//! The binary Patricia trie: routing, path-copy updates, subtree hash
//! caching, and proof construction.

use crate::proof::BinProof;
use crate::BinTrieError;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::sha256::Sha256;
use ledgerdb_pool::Pool;
use std::sync::OnceLock;

/// Bytes of a child hash a parent branch commits to (truncated link).
pub const LINK_LEN: usize = 16;

/// Routing-path length in bits (`sha256(key)` output).
pub const PATH_BITS: u32 = 256;

/// Bit `i` (MSB-first) of a 32-byte routing hash.
#[inline]
pub(crate) fn path_bit(hash: &[u8; 32], i: u32) -> bool {
    (hash[(i / 8) as usize] >> (7 - (i % 8))) & 1 == 1
}

/// The routing hash of a key.
#[inline]
pub(crate) fn route(key: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(key);
    h.finalize()
}

enum NodeKind {
    /// Splits the keyspace on routing bit `bit`: keys with bit 0 go
    /// left, bit 1 right. Bit indices strictly increase top-down, and
    /// both children are always present (path compression guarantees
    /// no one-child branches).
    Branch { bit: u32, left: Box<Node>, right: Box<Node> },
    /// Terminal node: the full key and value (the routing hash is
    /// recomputed on demand, never stored).
    Leaf { key: Vec<u8>, value: Vec<u8> },
}

struct Node {
    kind: NodeKind,
    hash: OnceLock<Digest>,
}

impl Node {
    fn new(kind: NodeKind) -> Self {
        Node { kind, hash: OnceLock::new() }
    }

    /// Full 32-byte node hash, memoized. A branch commits only the
    /// first [`LINK_LEN`] bytes of each child hash plus the split bit;
    /// a leaf commits its full key and value, length-prefixed.
    fn hash(&self) -> Digest {
        *self.hash.get_or_init(|| {
            let mut h = Sha256::new();
            match &self.kind {
                NodeKind::Leaf { key, value } => {
                    h.update(&[0x00]);
                    h.update(&(key.len() as u64).to_be_bytes());
                    h.update(key);
                    h.update(&(value.len() as u64).to_be_bytes());
                    h.update(value);
                }
                NodeKind::Branch { bit, left, right } => {
                    h.update(&[0x01]);
                    h.update(&bit.to_be_bytes());
                    h.update(&left.hash().0[..LINK_LEN]);
                    h.update(&right.hash().0[..LINK_LEN]);
                }
            }
            Digest(h.finalize())
        })
    }

    fn cached_hash(&self) -> Option<&Digest> {
        self.hash.get()
    }
}

/// Combine a parent hash from a split bit and two child links. This is
/// the only hashing rule proof verification needs.
pub(crate) fn branch_hash(bit: u32, left: &[u8; LINK_LEN], right: &[u8; LINK_LEN]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(&bit.to_be_bytes());
    h.update(left);
    h.update(right);
    Digest(h.finalize())
}

/// Leaf hash over a key/value pair (shared with proof verification).
pub(crate) fn leaf_hash(key: &[u8], value: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(&(key.len() as u64).to_be_bytes());
    h.update(key);
    h.update(&(value.len() as u64).to_be_bytes());
    h.update(value);
    Digest(h.finalize())
}

#[inline]
pub(crate) fn link(d: &Digest) -> [u8; LINK_LEN] {
    let mut out = [0u8; LINK_LEN];
    out.copy_from_slice(&d.0[..LINK_LEN]);
    out
}

/// A binary Merkle-ized Patricia trie keyed by `sha256(key)` bits.
#[derive(Default)]
pub struct BinTrie {
    root: Option<Box<Node>>,
    len: usize,
}

impl BinTrie {
    pub fn new() -> Self {
        BinTrie { root: None, len: 0 }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The committed root: full 32-byte hash of the root node, or
    /// [`Digest::ZERO`] for the empty trie.
    pub fn root_hash(&self) -> Digest {
        self.root.as_ref().map(|n| n.hash()).unwrap_or(Digest::ZERO)
    }

    /// Insert or replace `key → value`. Returns the previous value.
    /// Only nodes on the descent path get fresh (empty) hash caches;
    /// every untouched subtree keeps its memoized hash, so the next
    /// seal re-hashes O(path) nodes.
    pub fn insert(&mut self, key: &[u8], value: Vec<u8>) -> Option<Vec<u8>> {
        let path = route(key);
        let root = self.root.take();
        let (new_root, old) = Self::insert_at(root, &path, key, value);
        self.root = Some(new_root);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(
        node: Option<Box<Node>>,
        path: &[u8; 32],
        key: &[u8],
        value: Vec<u8>,
    ) -> (Box<Node>, Option<Vec<u8>>) {
        let Some(node) = node else {
            return (
                Box::new(Node::new(NodeKind::Leaf { key: key.to_vec(), value })),
                None,
            );
        };
        // Find where the new key diverges from this subtree. Every key
        // below `node` agrees on all routing bits above it, so probing
        // any resident leaf gives the shared prefix.
        let resident = Self::any_leaf_route(&node);
        let diverge = first_diff_bit(&resident, path);
        match (diverge, node.kind) {
            (None, NodeKind::Leaf { key: old_key, value: old_value }) => {
                debug_assert_eq!(old_key, key, "equal routing hashes must mean equal keys");
                (
                    Box::new(Node::new(NodeKind::Leaf { key: old_key, value })),
                    Some(old_value),
                )
            }
            (None, NodeKind::Branch { bit, left, right }) => {
                // The probe's route equals the new key's route yet a
                // branch exists below — only possible under a sha256
                // collision. Keep descending to stay total.
                let go_right = path_bit(path, bit);
                let (left, right, old) = if go_right {
                    let (r, old) = Self::insert_at(Some(right), path, key, value);
                    (left, r, old)
                } else {
                    let (l, old) = Self::insert_at(Some(left), path, key, value);
                    (l, right, old)
                };
                (Box::new(Node::new(NodeKind::Branch { bit, left, right })), old)
            }
            (Some(d), NodeKind::Branch { bit, left, right }) if bit <= d => {
                // The branch splits at or above the divergence point:
                // the new key still routes through it. (At `bit == d`
                // the probed leftmost leaf sits left, the new key goes
                // right — still a plain descent.) Keys below agree with
                // the probe on every bit above `bit`, so divergence
                // strictly below `bit` re-derives on the way down.
                let go_right = path_bit(path, bit);
                let (left, right, old) = if go_right {
                    let (r, old) = Self::insert_at(Some(right), path, key, value);
                    (left, r, old)
                } else {
                    let (l, old) = Self::insert_at(Some(left), path, key, value);
                    (l, right, old)
                };
                (Box::new(Node::new(NodeKind::Branch { bit, left, right })), old)
            }
            (Some(d), kind) => {
                // Diverges before this node's split (or at a leaf):
                // graft a new branch at bit `d` with the old subtree on
                // one side and a fresh leaf on the other.
                let old_subtree = Box::new(Node { kind, hash: OnceLock::new() });
                let new_leaf = Box::new(Node::new(NodeKind::Leaf { key: key.to_vec(), value }));
                let (left, right) = if path_bit(path, d) {
                    (old_subtree, new_leaf)
                } else {
                    (new_leaf, old_subtree)
                };
                (Box::new(Node::new(NodeKind::Branch { bit: d, left, right })), None)
            }
        }
    }

    /// The routing hash of an arbitrary leaf in `node`'s subtree
    /// (leftmost descent — O(depth), no hashing).
    fn any_leaf_route(node: &Node) -> [u8; 32] {
        let mut cur = node;
        loop {
            match &cur.kind {
                NodeKind::Leaf { key, .. } => return route(key),
                NodeKind::Branch { left, .. } => cur = left,
            }
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let path = route(key);
        let mut cur = self.root.as_deref()?;
        loop {
            match &cur.kind {
                NodeKind::Leaf { key: k, value } => {
                    return (k.as_slice() == key).then_some(value.as_slice());
                }
                NodeKind::Branch { bit, left, right } => {
                    cur = if path_bit(&path, *bit) { right } else { left };
                }
            }
        }
    }

    /// Remove a key. Returns the previous value. The orphaned sibling
    /// collapses into its grandparent (no one-child branches survive),
    /// keeping its cached subtree hash.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let path = route(key);
        let root = self.root.take()?;
        let (new_root, old) = Self::remove_at(root, &path, key);
        self.root = new_root;
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    fn remove_at(
        node: Box<Node>,
        path: &[u8; 32],
        key: &[u8],
    ) -> (Option<Box<Node>>, Option<Vec<u8>>) {
        match node.kind {
            NodeKind::Leaf { key: k, value } => {
                if k == key {
                    (None, Some(value))
                } else {
                    (Some(Box::new(Node::new(NodeKind::Leaf { key: k, value }))), None)
                }
            }
            NodeKind::Branch { bit, left, right } => {
                if path_bit(path, bit) {
                    let (right, old) = Self::remove_at(right, path, key);
                    match right {
                        Some(right) => (
                            Some(Box::new(Node::new(NodeKind::Branch { bit, left, right }))),
                            old,
                        ),
                        None => (Some(left), old),
                    }
                } else {
                    let (left, old) = Self::remove_at(left, path, key);
                    match left {
                        Some(left) => (
                            Some(Box::new(Node::new(NodeKind::Branch { bit, left, right }))),
                            old,
                        ),
                        None => (Some(right), old),
                    }
                }
            }
        }
    }

    /// All `(key, value)` pairs, sorted by key bytes — the canonical
    /// order checkpoint segments use, identical across state backends.
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::with_capacity(self.len);
        if let Some(root) = &self.root {
            Self::collect_entries(root, &mut out);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn collect_entries(node: &Node, out: &mut Vec<(Vec<u8>, Vec<u8>)>) {
        match &node.kind {
            NodeKind::Leaf { key, value } => out.push((key.clone(), value.clone())),
            NodeKind::Branch { left, right, .. } => {
                Self::collect_entries(left, out);
                Self::collect_entries(right, out);
            }
        }
    }

    /// Pre-hash dirty subtrees on `pool` so the subsequent
    /// [`root_hash`](Self::root_hash) only combines cached results.
    /// Mirrors `Mpt::hash_subtrees_with`: collect the dirty frontier a
    /// few levels down, then fan chunks out to the workers. The binary
    /// fan-out needs a deeper frontier than the 16-ary trie to expose
    /// comparable task counts.
    pub fn hash_subtrees_with(&self, pool: &Pool) {
        const FRONTIER_DEPTH: u32 = 10;
        let Some(root) = &self.root else { return };
        let mut frontier: Vec<&Node> = Vec::new();
        collect_dirty_frontier(root, FRONTIER_DEPTH, &mut frontier);
        if frontier.len() < 2 {
            if let Some(n) = frontier.first() {
                n.hash();
            }
            return;
        }
        let chunk = frontier.len().div_ceil(pool.workers().max(1) * 4).max(1);
        pool.scope(|s| {
            for nodes in frontier.chunks(chunk) {
                s.spawn(move || {
                    for n in nodes {
                        n.hash();
                    }
                });
            }
        });
    }

    /// Build a witness for `key`: inclusion if present, absence
    /// otherwise. Both shapes carry the leaf actually reached by
    /// routing plus one [`LINK_LEN`]-byte sibling link per branch,
    /// positions recorded in a 256-bit bitmap.
    pub fn prove(&self, key: &[u8]) -> BinProof {
        let path = route(key);
        let mut bitmap = [0u8; 32];
        let mut siblings: Vec<[u8; LINK_LEN]> = Vec::new();
        let Some(mut cur) = self.root.as_deref() else {
            return BinProof { key: key.to_vec(), leaf: None, bitmap, siblings };
        };
        loop {
            match &cur.kind {
                NodeKind::Leaf { key: k, value } => {
                    return BinProof {
                        key: key.to_vec(),
                        leaf: Some((k.clone(), value.clone())),
                        bitmap,
                        siblings,
                    };
                }
                NodeKind::Branch { bit, left, right } => {
                    bitmap[(bit / 8) as usize] |= 1 << (7 - (bit % 8));
                    let (next, sib) = if path_bit(&path, *bit) {
                        (right, left)
                    } else {
                        (left, right)
                    };
                    siblings.push(link(&sib.hash()));
                    cur = next;
                }
            }
        }
    }

    /// Inclusion proof for a key that must be present.
    pub fn prove_existing(&self, key: &[u8]) -> Result<BinProof, BinTrieError> {
        let proof = self.prove(key);
        match &proof.leaf {
            Some((k, _)) if k.as_slice() == key => Ok(proof),
            _ => Err(BinTrieError::KeyNotFound),
        }
    }
}

/// First bit index (MSB-first) where two routing hashes differ.
fn first_diff_bit(a: &[u8; 32], b: &[u8; 32]) -> Option<u32> {
    for i in 0..32 {
        let x = a[i] ^ b[i];
        if x != 0 {
            return Some(i as u32 * 8 + x.leading_zeros());
        }
    }
    None
}

/// Walk `depth` levels down, collecting the roots of dirty subtrees.
/// A node with a cached hash is clean (so is everything below it).
fn collect_dirty_frontier<'a>(node: &'a Node, depth: u32, out: &mut Vec<&'a Node>) {
    if node.cached_hash().is_some() {
        return;
    }
    if depth == 0 {
        out.push(node);
        return;
    }
    match &node.kind {
        NodeKind::Leaf { .. } => out.push(node),
        NodeKind::Branch { left, right, .. } => {
            let before = out.len();
            collect_dirty_frontier(left, depth - 1, out);
            collect_dirty_frontier(right, depth - 1, out);
            if out.len() == before {
                // Children all clean but this spine is dirty: hash it
                // here (cheap — combines two cached links).
                out.push(node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn keyed(n: u64) -> (Vec<u8>, Vec<u8>) {
        (format!("key-{n}").into_bytes(), format!("value-{n}").into_bytes())
    }

    #[test]
    fn empty_root_is_zero() {
        assert_eq!(BinTrie::new().root_hash(), Digest::ZERO);
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = BinTrie::new();
        for n in 0..200u64 {
            let (k, v) = keyed(n);
            assert_eq!(t.insert(&k, v.clone()), None);
            assert_eq!(t.get(&k), Some(v.as_slice()));
        }
        assert_eq!(t.len(), 200);
        let (k, _) = keyed(7);
        assert_eq!(t.insert(&k, b"new".to_vec()), Some(b"value-7".to_vec()));
        assert_eq!(t.len(), 200);
        assert_eq!(t.get(&k), Some(b"new".as_slice()));
        assert_eq!(t.get(b"missing"), None);
    }

    #[test]
    fn root_is_insertion_order_independent() {
        let mut a = BinTrie::new();
        let mut b = BinTrie::new();
        for n in 0..64u64 {
            let (k, v) = keyed(n);
            a.insert(&k, v);
        }
        for n in (0..64u64).rev() {
            let (k, v) = keyed(n);
            b.insert(&k, v);
        }
        assert_eq!(a.root_hash(), b.root_hash());
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn remove_collapses_and_matches_fresh_build() {
        let mut t = BinTrie::new();
        for n in 0..64u64 {
            let (k, v) = keyed(n);
            t.insert(&k, v);
        }
        for n in (0..64u64).step_by(2) {
            let (k, v) = keyed(n);
            assert_eq!(t.remove(&k), Some(v));
        }
        assert_eq!(t.remove(b"missing"), None);
        let mut fresh = BinTrie::new();
        for n in (1..64u64).step_by(2) {
            let (k, v) = keyed(n);
            fresh.insert(&k, v);
        }
        assert_eq!(t.len(), fresh.len());
        assert_eq!(t.root_hash(), fresh.root_hash());
    }

    #[test]
    fn entries_sorted_by_key_matches_model() {
        let mut t = BinTrie::new();
        let mut model = BTreeMap::new();
        for n in 0..120u64 {
            let (k, v) = keyed(n * 7919 % 997);
            t.insert(&k, v.clone());
            model.insert(k, v);
        }
        let expect: Vec<_> = model.into_iter().collect();
        assert_eq!(t.entries(), expect);
    }

    #[test]
    fn parallel_subtree_hashing_matches_serial_root() {
        let mut serial = BinTrie::new();
        let mut parallel = BinTrie::new();
        for n in 0..500u64 {
            let (k, v) = keyed(n);
            serial.insert(&k, v.clone());
            parallel.insert(&k, v);
        }
        let pool = Pool::new(4);
        parallel.hash_subtrees_with(&pool);
        assert_eq!(parallel.root_hash(), serial.root_hash());
        // Incremental reseal: touch a few keys, re-fan, same answer.
        for n in [3u64, 250, 499] {
            let (k, _) = keyed(n);
            serial.insert(&k, b"touched".to_vec());
            parallel.insert(&k, b"touched".to_vec());
        }
        parallel.hash_subtrees_with(&pool);
        assert_eq!(parallel.root_hash(), serial.root_hash());
    }
}
