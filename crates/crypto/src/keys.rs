//! Key pairs for ledger participants (users, LSP, TSA, regulator, DBA).

use crate::digest::Digest;
use crate::ecdsa::{sign, verify, Signature};
use crate::field::fn_order;
use crate::point::{Affine, Jacobian};
use crate::sha256::sha256;
use crate::u256::U256;

/// A secret scalar in `[1, n)`.
#[derive(Clone, Copy)]
pub struct SecretKey(pub U256);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

/// A public key: an affine curve point plus its cached 64-byte encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey {
    point: Affine,
    encoded: [u8; 64],
}

impl PublicKey {
    fn from_point(point: Affine) -> Self {
        let encoded = match point {
            Affine::Point { x, y } => {
                let mut out = [0u8; 64];
                out[..32].copy_from_slice(&x.to_be_bytes());
                out[32..].copy_from_slice(&y.to_be_bytes());
                out
            }
            Affine::Infinity => [0u8; 64],
        };
        PublicKey { point, encoded }
    }

    /// The underlying curve point.
    pub fn point(&self) -> Affine {
        self.point
    }

    /// Uncompressed 64-byte `x || y` encoding.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.encoded
    }

    /// Parse from 64 bytes, validating the curve equation.
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<PublicKey> {
        let x = U256::from_be_bytes(bytes[..32].try_into().unwrap());
        let y = U256::from_be_bytes(bytes[32..].try_into().unwrap());
        let point = Affine::Point { x, y };
        if !point.is_on_curve() {
            return None;
        }
        Some(PublicKey::from_point(point))
    }

    /// Stable identity digest of this key (used as member id).
    pub fn id(&self) -> Digest {
        sha256(&self.encoded)
    }

    /// Verify `sig` over `msg_digest` under this key.
    pub fn verify(&self, msg_digest: &Digest, sig: &Signature) -> bool {
        verify(&self.point, msg_digest, sig)
    }
}

impl std::hash::Hash for PublicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.encoded.hash(state);
    }
}

/// A secret/public key pair.
#[derive(Clone, Debug)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Derive a key pair deterministically from a seed (iterated SHA-256
    /// until the scalar lands in `[1, n)`). Deterministic derivation keeps
    /// tests, examples and benches reproducible.
    pub fn from_seed(seed: &[u8]) -> KeyPair {
        let n = fn_order();
        let mut candidate = sha256(seed);
        loop {
            let sk = U256::from_be_bytes(&candidate.0);
            if !sk.is_zero() && sk.lt(&n.m) {
                return Self::from_secret(SecretKey(sk));
            }
            candidate = sha256(candidate.as_bytes());
        }
    }

    /// Generate from OS randomness via the caller-provided entropy bytes.
    pub fn from_entropy(entropy: &[u8; 32]) -> KeyPair {
        Self::from_seed(entropy)
    }

    /// Build from an existing secret scalar.
    pub fn from_secret(secret: SecretKey) -> KeyPair {
        let point = Jacobian::from_generator_mul(&secret.0).to_affine();
        KeyPair { secret, public: PublicKey::from_point(point) }
    }

    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }

    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Sign a message digest.
    pub fn sign(&self, msg_digest: &Digest) -> Signature {
        sign(&self.secret.0, msg_digest)
    }
}

impl Jacobian {
    /// `k·G` helper so callers need not materialize the generator; uses
    /// the fixed-base window table.
    pub fn from_generator_mul(k: &U256) -> Jacobian {
        crate::point::mul_generator(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_deterministic() {
        let a = KeyPair::from_seed(b"seed");
        let b = KeyPair::from_seed(b"seed");
        assert_eq!(a.public(), b.public());
    }

    #[test]
    fn different_seeds_different_keys() {
        assert_ne!(
            KeyPair::from_seed(b"s1").public(),
            KeyPair::from_seed(b"s2").public()
        );
    }

    #[test]
    fn public_key_round_trip() {
        let kp = KeyPair::from_seed(b"rt");
        let pk = PublicKey::from_bytes(&kp.public().to_bytes()).unwrap();
        assert_eq!(&pk, kp.public());
    }

    #[test]
    fn from_bytes_rejects_off_curve() {
        let mut bytes = KeyPair::from_seed(b"x").public().to_bytes();
        bytes[5] ^= 0xff;
        assert!(PublicKey::from_bytes(&bytes).is_none());
    }

    #[test]
    fn keypair_sign_verify() {
        let kp = KeyPair::from_seed(b"signer");
        let msg = sha256(b"receipt");
        let sig = kp.sign(&msg);
        assert!(kp.public().verify(&msg, &sig));
    }

    #[test]
    fn key_id_is_stable_and_unique() {
        let a = KeyPair::from_seed(b"a");
        let b = KeyPair::from_seed(b"b");
        assert_eq!(a.public().id(), a.public().id());
        assert_ne!(a.public().id(), b.public().id());
    }
}
