//! The 32-byte digest type shared by every ledger structure, plus the
//! domain-separated Merkle hashing helpers used by all accumulators.

use crate::sha256::sha256_raw;
use std::fmt;

/// A 32-byte cryptographic digest (SHA-256 or SHA3-256 output).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as a placeholder (e.g. empty-tree root).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Construct from raw bytes.
    pub const fn new(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// View as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse from a 64-character hex string.
    pub fn from_hex(hex: &str) -> Option<Self> {
        let hex = hex.trim();
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// True when every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// First 8 bytes interpreted big-endian — handy for cheap ordering in
    /// tests and workload generators.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().unwrap())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Domain separator for leaf hashes in Merkle structures.
const LEAF_TAG: u8 = 0x00;
/// Domain separator for internal-node hashes in Merkle structures.
const NODE_TAG: u8 = 0x01;

/// Hash a leaf payload with the leaf domain tag.
///
/// Domain separation prevents an internal node from being replayed as a
/// leaf (a classic second-preimage weakness in untagged Merkle trees).
pub fn hash_leaf(data: &[u8]) -> Digest {
    let mut buf = Vec::with_capacity(1 + data.len());
    buf.push(LEAF_TAG);
    buf.extend_from_slice(data);
    Digest(sha256_raw(&buf))
}

/// Hash two child digests into a parent digest with the node domain tag.
pub fn hash_pair(left: &Digest, right: &Digest) -> Digest {
    let mut buf = [0u8; 65];
    buf[0] = NODE_TAG;
    buf[1..33].copy_from_slice(&left.0);
    buf[33..].copy_from_slice(&right.0);
    Digest(sha256_raw(&buf))
}

/// Hash an ordered list of digests (used to "bag" accumulator frontiers).
pub fn hash_many(items: &[Digest]) -> Digest {
    let mut buf = Vec::with_capacity(1 + items.len() * 32);
    buf.push(NODE_TAG);
    for d in items {
        buf.extend_from_slice(&d.0);
    }
    Digest(sha256_raw(&buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let d = hash_leaf(b"foobar");
        let parsed = Digest::from_hex(&d.to_hex()).unwrap();
        assert_eq!(d, parsed);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Digest::from_hex("abc").is_none());
        assert!(Digest::from_hex(&"zz".repeat(32)).is_none());
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A leaf hash of (l || r) must differ from the pair hash of l and r.
        let l = hash_leaf(b"l");
        let r = hash_leaf(b"r");
        let mut concat = Vec::new();
        concat.extend_from_slice(l.as_bytes());
        concat.extend_from_slice(r.as_bytes());
        assert_ne!(hash_leaf(&concat), hash_pair(&l, &r));
    }

    #[test]
    fn hash_pair_is_order_sensitive() {
        let a = hash_leaf(b"a");
        let b = hash_leaf(b"b");
        assert_ne!(hash_pair(&a, &b), hash_pair(&b, &a));
    }

    #[test]
    fn zero_digest() {
        assert!(Digest::ZERO.is_zero());
        assert!(!hash_leaf(b"x").is_zero());
    }
}
