//! SHA3-256 (Keccak-f\[1600\] with FIPS 202 padding), implemented from scratch.
//!
//! The CM-Tree scatters client-specified clue strings into balanced 32-byte
//! trie keys with SHA-3 (§IV-B2): `CM-Tree1` keys are `sha3_256(clue)`.

use crate::digest::Digest;

/// Keccak round constants.
const RC: [u64; 24] = [
    0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
    0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
    0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
    0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
    0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
    0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
];

/// Rotation offsets for the rho step, indexed `[x][y]`.
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// One application of Keccak-f[1600] to the 5x5 lane state.
#[allow(clippy::needless_range_loop)] // index loops mirror the spec's x/y lanes
fn keccak_f(state: &mut [[u64; 5]; 5]) {
    for rc in RC {
        // Theta.
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x][y] ^= d;
            }
        }
        // Rho and Pi.
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(RHO[x][y]);
            }
        }
        // Chi.
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ ((!b[(x + 1) % 5][y]) & b[(x + 2) % 5][y]);
            }
        }
        // Iota.
        state[0][0] ^= rc;
    }
}

/// SHA3-256: rate 136 bytes, capacity 64 bytes, domain padding `0x06 .. 0x80`.
pub fn sha3_256(data: &[u8]) -> Digest {
    const RATE: usize = 136;
    let mut state = [[0u64; 5]; 5];

    // Absorb full rate-sized blocks, then the padded final block.
    let mut padded = Vec::with_capacity(data.len() + RATE);
    padded.extend_from_slice(data);
    padded.push(0x06);
    while padded.len() % RATE != 0 {
        padded.push(0x00);
    }
    *padded.last_mut().unwrap() |= 0x80;

    for block in padded.chunks(RATE) {
        for (i, lane) in block.chunks(8).enumerate() {
            let x = i % 5;
            let y = i / 5;
            state[x][y] ^= u64::from_le_bytes(lane.try_into().unwrap());
        }
        keccak_f(&mut state);
    }

    // Squeeze 32 bytes.
    let mut out = [0u8; 32];
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        let x = i % 5;
        let y = i / 5;
        chunk.copy_from_slice(&state[x][y].to_le_bytes());
    }
    Digest(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips202_empty() {
        assert_eq!(
            sha3_256(b"").to_hex(),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn fips202_abc() {
        assert_eq!(
            sha3_256(b"abc").to_hex(),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn fips202_448_bits() {
        assert_eq!(
            sha3_256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376"
        );
    }

    #[test]
    fn rate_boundary_lengths() {
        // Lengths straddling the 136-byte rate must all differ and be stable.
        let a = sha3_256(&[7u8; 135]);
        let b = sha3_256(&[7u8; 136]);
        let c = sha3_256(&[7u8; 137]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(sha3_256(&[7u8; 136]), b);
    }

    #[test]
    fn differs_from_sha256() {
        // SHA-3 and SHA-2 must not collide on simple inputs (sanity check for
        // the clue-key scattering domain).
        let msg = b"clue:DCI001";
        assert_ne!(sha3_256(msg), crate::sha256(msg));
    }
}
