//! Error type for cryptographic operations.

use std::fmt;

/// Errors surfaced by the crypto substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A public key failed curve validation.
    InvalidPublicKey,
    /// A signature had out-of-range or zero components.
    InvalidSignature,
    /// A certificate failed CA verification.
    InvalidCertificate,
    /// A secret scalar was zero or >= the group order.
    InvalidSecretKey,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidPublicKey => write!(f, "public key is not on the curve"),
            CryptoError::InvalidSignature => write!(f, "signature components out of range"),
            CryptoError::InvalidCertificate => write!(f, "certificate failed CA verification"),
            CryptoError::InvalidSecretKey => write!(f, "secret key out of range"),
        }
    }
}

impl std::error::Error for CryptoError {}
