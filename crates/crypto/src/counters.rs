//! Process-global crypto operation counters.
//!
//! The append pipeline's core claim is *where* CPU work happens: on the
//! batched path, no SHA-256 finalization beyond the per-journal
//! canonical hash and no ECDSA verification may execute while the
//! ledger write lock is held. That claim is asserted empirically by
//! `prof_append`, which reads these counters immediately before and
//! after the locked section.
//!
//! Relaxed atomics: the counters are diagnostics, not synchronization.
//! They count every operation in the process, so assertions built on
//! them must run single-threaded (the profiler does).

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static SHA256_FINALIZES: AtomicU64 = AtomicU64::new(0);
pub(crate) static ECDSA_VERIFIES: AtomicU64 = AtomicU64::new(0);

/// Total SHA-256 digests finalized by this process so far.
pub fn sha256_finalizes() -> u64 {
    SHA256_FINALIZES.load(Ordering::Relaxed)
}

/// Total ECDSA signature verifications performed by this process so far.
pub fn ecdsa_verifies() -> u64 {
    ECDSA_VERIFIES.load(Ordering::Relaxed)
}
