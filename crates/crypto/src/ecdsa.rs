//! Deterministic ECDSA over secp256k1.
//!
//! Signatures are the non-repudiation primitive of the paper's *who*
//! dimension (§III-C): clients sign request hashes (π_c), the LSP signs
//! receipts (π_s) and the TSA signs digest-timestamp pairs (π_t).

use crate::digest::Digest;
use crate::field::fn_order;
use crate::point::{double_scalar_mul, Affine};
use crate::scalar::{deterministic_nonce, digest_to_scalar};
use crate::u256::U256;

/// An ECDSA signature `(r, s)` with low-s normalization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    pub r: U256,
    pub s: U256,
}

impl Signature {
    /// Serialize as 64 bytes (r || s, big-endian).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parse from 64 bytes; rejects out-of-range or zero components.
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<Signature> {
        let n = fn_order();
        let r = U256::from_be_bytes(bytes[..32].try_into().unwrap());
        let s = U256::from_be_bytes(bytes[32..].try_into().unwrap());
        if r.is_zero() || s.is_zero() || r.ge(&n.m) || s.ge(&n.m) {
            return None;
        }
        Some(Signature { r, s })
    }
}

/// Sign a 32-byte message digest with secret scalar `sk`.
///
/// The nonce is derived deterministically (RFC 6979 flavour) so repeated
/// signing of the same journal yields identical receipts.
pub fn sign(sk: &U256, msg_digest: &Digest) -> Signature {
    let n = fn_order();
    let z = digest_to_scalar(msg_digest);
    let mut nonce_digest = *msg_digest;
    loop {
        let k = deterministic_nonce(sk, &nonce_digest);
        // Fixed-base table multiplication: the signing hot path.
        let r_point = crate::point::mul_generator(&k).to_affine();
        let Affine::Point { x, .. } = r_point else {
            // k·G = infinity cannot occur for 0 < k < n, but stay total.
            nonce_digest = crate::sha256(nonce_digest.as_bytes());
            continue;
        };
        // r = R.x mod n.
        let r = if x.ge(&n.m) { x.sbb(&n.m).0 } else { x };
        if r.is_zero() {
            nonce_digest = crate::sha256(nonce_digest.as_bytes());
            continue;
        }
        let k_inv = n.inv(&k).expect("nonzero nonce");
        let rd = n.mul(&r, sk);
        let mut s = n.mul(&k_inv, &n.add(&z, &rd));
        if s.is_zero() {
            nonce_digest = crate::sha256(nonce_digest.as_bytes());
            continue;
        }
        // Low-s normalization (reject malleable twin).
        let half = {
            // floor(n/2): (n-1) >> 1 computed via subtraction and shift.
            let n_minus_1 = n.m.sbb(&U256::ONE).0;
            let mut limbs = n_minus_1.0;
            let mut carry = 0u64;
            for limb in limbs.iter_mut().rev() {
                let new_carry = *limb & 1;
                *limb = (*limb >> 1) | (carry << 63);
                carry = new_carry;
            }
            U256(limbs)
        };
        if half.lt(&s) {
            s = n.neg(&s);
        }
        return Signature { r, s };
    }
}

/// Verify a signature over `msg_digest` against public point `pk`.
pub fn verify(pk: &Affine, msg_digest: &Digest, sig: &Signature) -> bool {
    crate::counters::ECDSA_VERIFIES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let n = fn_order();
    if sig.r.is_zero() || sig.s.is_zero() || sig.r.ge(&n.m) || sig.s.ge(&n.m) {
        return false;
    }
    let Affine::Point { .. } = pk else {
        return false;
    };
    if !pk.is_on_curve() {
        return false;
    }
    let z = digest_to_scalar(msg_digest);
    let Some(s_inv) = n.inv(&sig.s) else {
        return false;
    };
    let u1 = n.mul(&z, &s_inv);
    let u2 = n.mul(&sig.r, &s_inv);
    let g = Affine::generator().to_jacobian();
    let q = pk.to_jacobian();
    let r_point = double_scalar_mul(&u1, &g, &u2, &q);
    if r_point.is_infinity() {
        return false;
    }
    let Affine::Point { x, .. } = r_point.to_affine() else {
        return false;
    };
    let x_mod_n = if x.ge(&n.m) { x.sbb(&n.m).0 } else { x };
    x_mod_n == sig.r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use crate::sha256;

    #[test]
    fn sign_verify_round_trip() {
        let kp = KeyPair::from_seed(b"alice");
        let msg = sha256(b"append journal 1");
        let sig = sign(&kp.secret().0, &msg);
        assert!(verify(&kp.public().point(), &msg, &sig));
    }

    #[test]
    fn wrong_message_fails() {
        let kp = KeyPair::from_seed(b"alice");
        let sig = sign(&kp.secret().0, &sha256(b"m1"));
        assert!(!verify(&kp.public().point(), &sha256(b"m2"), &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let alice = KeyPair::from_seed(b"alice");
        let bob = KeyPair::from_seed(b"bob");
        let msg = sha256(b"payload");
        let sig = sign(&alice.secret().0, &msg);
        assert!(!verify(&bob.public().point(), &msg, &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let kp = KeyPair::from_seed(b"carol");
        let msg = sha256(b"same message");
        assert_eq!(sign(&kp.secret().0, &msg), sign(&kp.secret().0, &msg));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = KeyPair::from_seed(b"dave");
        let msg = sha256(b"msg");
        let sig = sign(&kp.secret().0, &msg);
        let mut bytes = sig.to_bytes();
        bytes[10] ^= 0x01;
        if let Some(bad) = Signature::from_bytes(&bytes) {
            assert!(!verify(&kp.public().point(), &msg, &bad));
        }
    }

    #[test]
    fn serde_round_trip() {
        let kp = KeyPair::from_seed(b"erin");
        let sig = sign(&kp.secret().0, &sha256(b"x"));
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(sig, parsed);
    }

    #[test]
    fn rejects_zero_components() {
        let mut bytes = [0u8; 64];
        assert!(Signature::from_bytes(&bytes).is_none());
        bytes[63] = 1; // r = 0, s = 1
        assert!(Signature::from_bytes(&bytes).is_none());
    }

    #[test]
    fn verify_rejects_infinity_pk() {
        let kp = KeyPair::from_seed(b"frank");
        let msg = sha256(b"msg");
        let sig = sign(&kp.secret().0, &msg);
        assert!(!verify(&Affine::Infinity, &msg, &sig));
    }
}
