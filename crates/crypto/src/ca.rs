//! A minimal certificate authority.
//!
//! The paper's threat model (§II-B) assumes "the identities of all ledger
//! participants are authentic, i.e., they (user, LSP, TSA, and regulator)
//! disclose their public keys certified by a CA". This module is that CA:
//! it signs `(subject, role, pk)` tuples and verifiers check certificates
//! before trusting any signature.

use crate::digest::Digest;
use crate::ecdsa::Signature;
use crate::keys::{KeyPair, PublicKey};
use crate::sha256::Sha256;

/// The role a certified participant plays in the ledger ecosystem.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// An ordinary ledger member.
    User,
    /// The ledger service provider.
    Lsp,
    /// A timestamp authority.
    Tsa,
    /// The regulator role holder (can co-sign occult operations).
    Regulator,
    /// Database administrator (co-signs purge and occult operations).
    Dba,
}

impl Role {
    fn tag(&self) -> u8 {
        match self {
            Role::User => 0,
            Role::Lsp => 1,
            Role::Tsa => 2,
            Role::Regulator => 3,
            Role::Dba => 4,
        }
    }
}

/// A CA-signed binding of a subject name, role and public key.
#[derive(Clone, Debug)]
pub struct Certificate {
    pub subject: String,
    pub role: Role,
    pub public_key: PublicKey,
    pub signature: Signature,
}

impl Certificate {
    /// The digest the CA signs.
    pub fn signing_digest(subject: &str, role: Role, pk: &PublicKey) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.cert.v1");
        h.update(&[role.tag()]);
        h.update(&(subject.len() as u64).to_be_bytes());
        h.update(subject.as_bytes());
        h.update(&pk.to_bytes());
        Digest(h.finalize())
    }

    /// Validate this certificate against the CA's public key.
    pub fn verify(&self, ca_pk: &PublicKey) -> bool {
        let digest = Self::signing_digest(&self.subject, self.role, &self.public_key);
        ca_pk.verify(&digest, &self.signature)
    }
}

/// The certificate authority: a key pair that issues certificates.
pub struct CertificateAuthority {
    keys: KeyPair,
}

impl CertificateAuthority {
    /// Create a CA from a deterministic seed.
    pub fn from_seed(seed: &[u8]) -> Self {
        CertificateAuthority { keys: KeyPair::from_seed(seed) }
    }

    /// The CA's public verification key.
    pub fn public_key(&self) -> &PublicKey {
        self.keys.public()
    }

    /// Issue a certificate binding `subject`/`role` to `pk`.
    pub fn issue(&self, subject: &str, role: Role, pk: &PublicKey) -> Certificate {
        let digest = Certificate::signing_digest(subject, role, pk);
        Certificate {
            subject: subject.to_string(),
            role,
            public_key: *pk,
            signature: self.keys.sign(&digest),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_verify() {
        let ca = CertificateAuthority::from_seed(b"root-ca");
        let user = KeyPair::from_seed(b"user-1");
        let cert = ca.issue("user-1", Role::User, user.public());
        assert!(cert.verify(ca.public_key()));
    }

    #[test]
    fn tampered_subject_fails() {
        let ca = CertificateAuthority::from_seed(b"root-ca");
        let user = KeyPair::from_seed(b"user-1");
        let mut cert = ca.issue("user-1", Role::User, user.public());
        cert.subject = "user-2".to_string();
        assert!(!cert.verify(ca.public_key()));
    }

    #[test]
    fn role_change_fails() {
        let ca = CertificateAuthority::from_seed(b"root-ca");
        let user = KeyPair::from_seed(b"user-1");
        let mut cert = ca.issue("user-1", Role::User, user.public());
        cert.role = Role::Dba;
        assert!(!cert.verify(ca.public_key()));
    }

    #[test]
    fn wrong_ca_fails() {
        let ca = CertificateAuthority::from_seed(b"root-ca");
        let rogue = CertificateAuthority::from_seed(b"rogue-ca");
        let user = KeyPair::from_seed(b"user-1");
        let cert = rogue.issue("user-1", Role::User, user.public());
        assert!(!cert.verify(ca.public_key()));
    }

    #[test]
    fn key_substitution_fails() {
        let ca = CertificateAuthority::from_seed(b"root-ca");
        let user = KeyPair::from_seed(b"user-1");
        let eve = KeyPair::from_seed(b"eve");
        let mut cert = ca.issue("user-1", Role::User, user.public());
        cert.public_key = *eve.public();
        assert!(!cert.verify(ca.public_key()));
    }
}
