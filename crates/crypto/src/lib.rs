//! Cryptographic substrate for the LedgerDB reproduction.
//!
//! Everything here is implemented from scratch per the reproduction charter:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 (the ledger's journal/block digest).
//! * [`keccak`] — SHA3-256 (Keccak-f\[1600\]), used by the CM-Tree to scatter
//!   clue keys (§IV-B2 of the paper).
//! * [`hmac`] — HMAC-SHA256, used for deterministic ECDSA nonces.
//! * [`u256`] / [`field`] / [`scalar`] / [`point`] — 256-bit arithmetic and
//!   the secp256k1 group.
//! * [`ecdsa`] — deterministic ECDSA signatures (RFC-6979 style nonce).
//! * [`keys`] / [`ca`] / [`multisig`] — ledger participant identities,
//!   certificate-authority registration (Prerequisite 3) and the
//!   multi-signature objects gathered for purge/occult journals
//!   (Prerequisites 1 and 2).
//!
//! The paper's threat model (§II-B) assumes SHA-256 and ECDSA are reliable
//! and that all participants hold CA-certified key pairs; this crate is the
//! concrete embodiment of that assumption.

pub mod ca;
pub mod counters;
pub mod digest;
pub mod ecdsa;
pub mod error;
pub mod field;
pub mod hmac;
pub mod keccak;
pub mod keys;
pub mod multisig;
pub mod point;
pub mod scalar;
pub mod sha256;
pub mod sync;
pub mod u256;
pub mod wire;

pub use ca::{Certificate, CertificateAuthority};
pub use digest::{hash_leaf, hash_pair, Digest};
pub use ecdsa::{sign, verify, Signature};
pub use error::CryptoError;
pub use keys::{KeyPair, PublicKey, SecretKey};
pub use multisig::MultiSignature;
pub use sha256::sha256;
pub use wire::{Reader, Wire, WireError, Writer};

/// Convenience: SHA3-256 of a byte slice (clue-key scattering).
pub fn sha3_256(data: &[u8]) -> Digest {
    keccak::sha3_256(data)
}
