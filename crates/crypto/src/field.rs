//! The secp256k1 base field Fp and scalar field Fn constants.
//!
//! Both moduli are pseudo-Mersenne (`2^256 - c`), so the generic
//! [`Modulus`] reduction in [`crate::u256`] applies to both.

use crate::u256::{Modulus, U256};
use std::sync::OnceLock;

/// secp256k1 base field prime `p = 2^256 - 2^32 - 977`.
pub fn fp() -> &'static Modulus {
    static FP: OnceLock<Modulus> = OnceLock::new();
    FP.get_or_init(|| {
        Modulus::new(
            U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
                .expect("static hex"),
        )
    })
}

/// secp256k1 group order `n`.
pub fn fn_order() -> &'static Modulus {
    static FN: OnceLock<Modulus> = OnceLock::new();
    FN.get_or_init(|| {
        Modulus::new(
            U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
                .expect("static hex"),
        )
    })
}

/// Curve coefficient `b` in `y^2 = x^3 + 7`.
pub fn curve_b() -> U256 {
    U256::from_u64(7)
}

/// Generator x-coordinate.
pub fn gen_x() -> U256 {
    U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
        .expect("static hex")
}

/// Generator y-coordinate.
pub fn gen_y() -> U256 {
    U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")
        .expect("static hex")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        let f = fp();
        let x = gen_x();
        let y = gen_y();
        let lhs = f.sq(&y);
        let rhs = f.add(&f.mul(&f.sq(&x), &x), &curve_b());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn order_is_below_prime() {
        assert!(fn_order().m.lt(&fp().m));
    }
}
