//! Scalar (mod-n) helpers for ECDSA: conversion of message digests into
//! scalars and deterministic nonce generation (RFC 6979 flavour).

use crate::digest::Digest;
use crate::field::fn_order;
use crate::hmac::hmac_sha256;
use crate::u256::U256;

/// Interpret a 32-byte message digest as a scalar mod n (the standard
/// "bits2int then reduce" step of ECDSA).
pub fn digest_to_scalar(d: &Digest) -> U256 {
    let x = U256::from_be_bytes(&d.0);
    let n = fn_order();
    if x.ge(&n.m) {
        x.sbb(&n.m).0
    } else {
        x
    }
}

/// Deterministic nonce derivation in the spirit of RFC 6979: an
/// HMAC-SHA256 DRBG keyed by the secret key and message digest, iterated
/// until it yields a nonzero scalar below n.
///
/// Determinism matters for reproducibility: a ledger replayed from the same
/// journals re-derives byte-identical signatures, so audit fixtures are
/// stable across runs.
pub fn deterministic_nonce(secret: &U256, msg_digest: &Digest) -> U256 {
    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];
    let sk_bytes = secret.to_be_bytes();

    // K = HMAC(K, V || 0x00 || sk || digest)
    let mut data = Vec::with_capacity(32 + 1 + 32 + 32);
    data.extend_from_slice(&v);
    data.push(0x00);
    data.extend_from_slice(&sk_bytes);
    data.extend_from_slice(&msg_digest.0);
    k = hmac_sha256(&k, &data);
    v = hmac_sha256(&k, &v);

    // K = HMAC(K, V || 0x01 || sk || digest)
    let mut data = Vec::with_capacity(32 + 1 + 32 + 32);
    data.extend_from_slice(&v);
    data.push(0x01);
    data.extend_from_slice(&sk_bytes);
    data.extend_from_slice(&msg_digest.0);
    k = hmac_sha256(&k, &data);
    v = hmac_sha256(&k, &v);

    let n = fn_order();
    loop {
        v = hmac_sha256(&k, &v);
        let candidate = U256::from_be_bytes(&v);
        if !candidate.is_zero() && candidate.lt(&n.m) {
            return candidate;
        }
        // K = HMAC(K, V || 0x00); V = HMAC(K, V) and retry.
        let mut data = Vec::with_capacity(33);
        data.extend_from_slice(&v);
        data.push(0x00);
        k = hmac_sha256(&k, &data);
        v = hmac_sha256(&k, &v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn nonce_is_deterministic() {
        let sk = U256::from_u64(424242);
        let d = sha256(b"message");
        assert_eq!(deterministic_nonce(&sk, &d), deterministic_nonce(&sk, &d));
    }

    #[test]
    fn nonce_differs_per_message_and_key() {
        let sk = U256::from_u64(424242);
        let d1 = sha256(b"m1");
        let d2 = sha256(b"m2");
        assert_ne!(deterministic_nonce(&sk, &d1), deterministic_nonce(&sk, &d2));
        let sk2 = U256::from_u64(424243);
        assert_ne!(deterministic_nonce(&sk, &d1), deterministic_nonce(&sk2, &d1));
    }

    #[test]
    fn nonce_in_range() {
        let n = fn_order();
        for i in 1..20u64 {
            let nonce = deterministic_nonce(&U256::from_u64(i), &sha256(&i.to_be_bytes()));
            assert!(!nonce.is_zero());
            assert!(nonce.lt(&n.m));
        }
    }

    #[test]
    fn digest_to_scalar_reduces() {
        let max = Digest([0xff; 32]);
        let s = digest_to_scalar(&max);
        assert!(s.lt(&fn_order().m));
    }
}
