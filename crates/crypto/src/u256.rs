//! 256-bit unsigned integer arithmetic with modular operations for
//! pseudo-Mersenne moduli (`m = 2^256 - c`), which covers both the
//! secp256k1 base field prime and the group order.

/// A 256-bit unsigned integer stored as four little-endian u64 limbs.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U256(pub [u64; 4]);

impl std::fmt::Debug for U256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "U256(0x{:016x}{:016x}{:016x}{:016x})",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl U256 {
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Construct from a small integer.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Parse from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[3 - i] = u64::from_be_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
        }
        U256(limbs)
    }

    /// Serialize to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[3 - i].to_be_bytes());
        }
        out
    }

    /// Parse from a big-endian hex string (up to 64 chars, no 0x prefix).
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.is_empty() || hex.len() > 64 {
            return None;
        }
        let padded = format!("{hex:0>64}");
        let mut bytes = [0u8; 32];
        for (i, chunk) in padded.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            bytes[i] = ((hi << 4) | lo) as u8;
        }
        Some(Self::from_be_bytes(&bytes))
    }

    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Test bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Index of the highest set bit, or None if zero.
    pub fn highest_bit(&self) -> Option<usize> {
        for limb in (0..4).rev() {
            if self.0[limb] != 0 {
                return Some(limb * 64 + 63 - self.0[limb].leading_zeros() as usize);
            }
        }
        None
    }

    /// `self < other`.
    pub fn lt(&self, other: &U256) -> bool {
        for i in (0..4).rev() {
            if self.0[i] != other.0[i] {
                return self.0[i] < other.0[i];
            }
        }
        false
    }

    /// `self >= other`.
    pub fn ge(&self, other: &U256) -> bool {
        !self.lt(other)
    }

    /// Wrapping addition; returns (sum, carry).
    #[allow(clippy::needless_range_loop)] // limb indices pair two arrays
    pub fn adc(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(other.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256(out), carry != 0)
    }

    /// Wrapping subtraction; returns (difference, borrow).
    #[allow(clippy::needless_range_loop)] // limb indices pair two arrays
    pub fn sbb(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(other.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256(out), borrow != 0)
    }

    /// Full 256x256 -> 512-bit schoolbook multiplication.
    pub fn widening_mul(&self, other: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let acc = out[i + j] as u128 + (self.0[i] as u128) * (other.0[j] as u128) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512(out)
    }
}

/// A 512-bit unsigned integer (multiplication intermediate).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U512(pub [u64; 8]);

impl U512 {
    /// Split into (high 256 bits, low 256 bits).
    pub fn split(&self) -> (U256, U256) {
        (
            U256([self.0[4], self.0[5], self.0[6], self.0[7]]),
            U256([self.0[0], self.0[1], self.0[2], self.0[3]]),
        )
    }

    pub fn is_high_zero(&self) -> bool {
        self.0[4] == 0 && self.0[5] == 0 && self.0[6] == 0 && self.0[7] == 0
    }

    /// 512-bit addition of a 256-bit value (carry propagates through all
    /// eight limbs; overflow beyond 512 bits cannot occur for our inputs).
    #[allow(clippy::needless_range_loop)] // limb indices pair two arrays
    pub fn add_u256(&self, other: &U256) -> U512 {
        let mut out = self.0;
        let mut carry = 0u64;
        for i in 0..8 {
            let o = if i < 4 { other.0[i] } else { 0 };
            let (s1, c1) = out[i].overflowing_add(o);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        debug_assert_eq!(carry, 0, "U512 addition overflow");
        U512(out)
    }
}

/// A pseudo-Mersenne modulus `m = 2^256 - c` together with the reduction
/// constant `c` (which must satisfy `c < 2^192` — true for both secp256k1
/// moduli).
#[derive(Clone, Copy, Debug)]
pub struct Modulus {
    pub m: U256,
    /// `c = 2^256 - m = 2^256 mod m`.
    pub c: U256,
}

impl Modulus {
    /// Build a modulus, deriving `c = 2^256 - m` (wrapping negate).
    pub fn new(m: U256) -> Self {
        // 2^256 - m == (!m) + 1 in 256-bit wrapping arithmetic.
        let (not_m_plus_1, _) = U256([!m.0[0], !m.0[1], !m.0[2], !m.0[3]]).adc(&U256::ONE);
        Modulus { m, c: not_m_plus_1 }
    }

    /// Reduce an arbitrary 256-bit value mod m (m > 2^255, so at most one
    /// subtraction is needed).
    pub fn reduce(&self, x: U256) -> U256 {
        if x.ge(&self.m) {
            x.sbb(&self.m).0
        } else {
            x
        }
    }

    /// Reduce a 512-bit value mod m using `2^256 ≡ c (mod m)`:
    /// repeatedly fold the high half as `hi·c + lo` until the high half
    /// vanishes, then conditionally subtract m.
    pub fn reduce_wide(&self, x: U512) -> U256 {
        let mut cur = x;
        loop {
            let (hi, lo) = cur.split();
            if cur.is_high_zero() {
                let mut r = lo;
                while r.ge(&self.m) {
                    r = r.sbb(&self.m).0;
                }
                return r;
            }
            cur = hi.widening_mul(&self.c).add_u256(&lo);
        }
    }

    /// Modular addition.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        let (sum, carry) = a.adc(b);
        if carry {
            // sum + 2^256 ≡ sum + c (mod m).
            let (folded, carry2) = sum.adc(&self.c);
            debug_assert!(!carry2);
            self.reduce(folded)
        } else {
            self.reduce(sum)
        }
    }

    /// Modular subtraction.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        let (diff, borrow) = a.sbb(b);
        if borrow {
            diff.adc(&self.m).0
        } else {
            diff
        }
    }

    /// Modular multiplication.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        self.reduce_wide(a.widening_mul(b))
    }

    /// Modular squaring.
    pub fn sq(&self, a: &U256) -> U256 {
        self.mul(a, a)
    }

    /// Modular exponentiation (square-and-multiply, MSB first).
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let mut result = U256::ONE;
        let Some(top) = exp.highest_bit() else {
            return result;
        };
        for i in (0..=top).rev() {
            result = self.sq(&result);
            if exp.bit(i) {
                result = self.mul(&result, base);
            }
        }
        result
    }

    /// Modular inverse via Fermat's little theorem (`a^(m-2) mod m`);
    /// valid because both secp256k1 moduli are prime. Returns None for zero.
    pub fn inv(&self, a: &U256) -> Option<U256> {
        if a.is_zero() {
            return None;
        }
        let two = U256::from_u64(2);
        let (m_minus_2, borrow) = self.m.sbb(&two);
        debug_assert!(!borrow);
        Some(self.pow(a, &m_minus_2))
    }

    /// Modular negation.
    pub fn neg(&self, a: &U256) -> U256 {
        if a.is_zero() {
            U256::ZERO
        } else {
            self.m.sbb(a).0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Modulus {
        Modulus::new(
            U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
                .unwrap(),
        )
    }

    fn n() -> Modulus {
        Modulus::new(
            U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
                .unwrap(),
        )
    }

    #[test]
    fn c_constant_for_p() {
        // 2^256 - p = 2^32 + 977 = 0x1000003d1.
        assert_eq!(p().c, U256::from_hex("1000003d1").unwrap());
    }

    #[test]
    fn be_bytes_round_trip() {
        let x = U256::from_hex("deadbeef00000000000000000000000000000000000000000000000000001234")
            .unwrap();
        assert_eq!(U256::from_be_bytes(&x.to_be_bytes()), x);
    }

    #[test]
    fn add_sub_inverse() {
        let m = p();
        let a = U256::from_hex("aa11bb22cc33dd44ee55ff6600112233445566778899aabbccddeeff00112233")
            .unwrap();
        let b = U256::from_hex("123456789abcdef0fedcba98765432100123456789abcdef013579bdf02468ac")
            .unwrap();
        let s = m.add(&a, &b);
        assert_eq!(m.sub(&s, &b), m.reduce(a));
        assert_eq!(m.sub(&s, &a), m.reduce(b));
    }

    #[test]
    fn mul_matches_small_values() {
        let m = n();
        let a = U256::from_u64(123_456_789);
        let b = U256::from_u64(987_654_321);
        assert_eq!(m.mul(&a, &b), U256::from_u64(123_456_789 * 987_654_321));
    }

    #[test]
    fn inverse_is_correct() {
        for modulus in [p(), n()] {
            let a = U256::from_hex(
                "7f3c2a1b5d4e6f708192a3b4c5d6e7f8091a2b3c4d5e6f708192a3b4c5d6e7f8",
            )
            .unwrap();
            let inv = modulus.inv(&a).unwrap();
            assert_eq!(modulus.mul(&a, &inv), U256::ONE);
        }
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(p().inv(&U256::ZERO).is_none());
    }

    #[test]
    fn pow_small_cases() {
        let m = p();
        let three = U256::from_u64(3);
        assert_eq!(m.pow(&three, &U256::ZERO), U256::ONE);
        assert_eq!(m.pow(&three, &U256::from_u64(5)), U256::from_u64(243));
    }

    #[test]
    fn neg_round_trip() {
        let m = n();
        let a = U256::from_u64(42);
        assert_eq!(m.add(&a, &m.neg(&a)), U256::ZERO);
        assert_eq!(m.neg(&U256::ZERO), U256::ZERO);
    }

    #[test]
    fn reduce_wide_of_max_product() {
        // (m-1)^2 mod m == 1.
        for modulus in [p(), n()] {
            let m_minus_1 = modulus.m.sbb(&U256::ONE).0;
            assert_eq!(modulus.mul(&m_minus_1, &m_minus_1), U256::ONE);
        }
    }
}
