//! Minimal synchronization primitives with a `parking_lot`-shaped API.
//!
//! The reproduction builds in fully offline environments, so external
//! crates are off the table. These wrappers give the rest of the
//! workspace the ergonomic guard-returning `read()` / `write()` /
//! `lock()` calls over `std::sync` primitives. Poisoning is ignored: a
//! panic while holding a lock propagates the payload to whoever observes
//! it next, which for this codebase (no partial-update critical sections
//! that survive a panic) matches `parking_lot` semantics closely enough.

use std::sync::{
    Arc, Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock whose guards are returned directly.
#[derive(Default, Debug)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// An `ArcSwap`-shaped cell: a slot holding an `Arc<T>` that readers
/// `load()` and writers `store()` atomically.
///
/// Built over `RwLock<Arc<T>>` so it stays std-only. The critical
/// section on either side is a single pointer clone or swap — a few
/// nanoseconds — so readers never wait behind whatever long-lived lock
/// protects the data the `Arc` was snapshotted from. That property is
/// what the snapshot read path relies on: publishing a new ledger
/// snapshot happens while the ledger write lock is held (and may be
/// mid-fsync), but `store()` here touches only the cell, so concurrent
/// `load()`ers at worst contend for the pointer swap, never the fsync.
pub struct ArcCell<T>(RwLock<Arc<T>>);

impl<T> ArcCell<T> {
    pub fn new(value: Arc<T>) -> Self {
        ArcCell(RwLock::new(value))
    }

    /// Returns the current value. The cell's lock is held only for the
    /// duration of one `Arc::clone`.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.0.read())
    }

    /// Replaces the current value. The cell's lock is held only for the
    /// pointer swap; the old value's drop (if this was the last
    /// reference) happens after the lock is released.
    pub fn store(&self, value: Arc<T>) {
        let old = std::mem::replace(&mut *self.0.write(), value);
        drop(old);
    }

    /// Replaces the current value, returning the previous one.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        std::mem::replace(&mut *self.0.write(), value)
    }
}

impl<T> std::fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ArcCell(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_guards() {
        let lock = RwLock::new(1u64);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn arc_cell_load_store_swap() {
        let cell = ArcCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn arc_cell_readers_race_a_writer() {
        // Readers must always observe some complete published value,
        // and loaded Arcs stay valid after the cell moves on.
        let cell = Arc::new(ArcCell::new(Arc::new(0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let seen = *cell.load();
                        assert!(seen >= last, "published values went backwards");
                        last = seen;
                    }
                    last
                })
            })
            .collect();
        for v in 1..=1000u64 {
            cell.store(Arc::new(v));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() <= 1000);
        }
        assert_eq!(*cell.load(), 1000);
    }
}
