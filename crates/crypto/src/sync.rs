//! Minimal synchronization primitives with a `parking_lot`-shaped API.
//!
//! The reproduction builds in fully offline environments, so external
//! crates are off the table. These wrappers give the rest of the
//! workspace the ergonomic guard-returning `read()` / `write()` /
//! `lock()` calls over `std::sync` primitives. Poisoning is ignored: a
//! panic while holding a lock propagates the payload to whoever observes
//! it next, which for this codebase (no partial-update critical sections
//! that survive a panic) matches `parking_lot` semantics closely enough.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock whose guards are returned directly.
#[derive(Default, Debug)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_guards() {
        let lock = RwLock::new(1u64);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
