//! Multi-signature objects.
//!
//! The paper's mutation verifications require gathered signatures from
//! several parties: purge journals need the DBA plus every member holding
//! journals before the purge point (Prerequisite 1); occult journals need
//! the DBA plus the regulator (Prerequisite 2). A [`MultiSignature`] is the
//! concrete proof object `P` consumes during the Dasein-complete audit (§V).

use crate::digest::Digest;
use crate::ecdsa::Signature;
use crate::keys::{KeyPair, PublicKey};

/// A set of `(signer, signature)` pairs over a single message digest.
#[derive(Clone, Debug, Default)]
pub struct MultiSignature {
    entries: Vec<(PublicKey, Signature)>,
}

impl MultiSignature {
    /// Empty multi-signature (no endorsements yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a signature from `signer` over `msg`. Duplicate signers are
    /// replaced rather than appended so the entry count equals the number of
    /// distinct endorsers.
    pub fn add(&mut self, signer: &KeyPair, msg: &Digest) {
        let sig = signer.sign(msg);
        self.add_raw(*signer.public(), sig);
    }

    /// Add an externally produced signature.
    pub fn add_raw(&mut self, pk: PublicKey, sig: Signature) {
        if let Some(slot) = self.entries.iter_mut().find(|(p, _)| *p == pk) {
            slot.1 = sig;
        } else {
            self.entries.push((pk, sig));
        }
    }

    /// Number of distinct signers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The set of signer public keys.
    pub fn signers(&self) -> impl Iterator<Item = &PublicKey> {
        self.entries.iter().map(|(pk, _)| pk)
    }

    /// The signatures, index-aligned with [`MultiSignature::signers`].
    pub fn signatures(&self) -> impl Iterator<Item = &Signature> {
        self.entries.iter().map(|(_, sig)| sig)
    }

    /// Verify every signature over `msg`. Returns false if any fails.
    pub fn verify_all(&self, msg: &Digest) -> bool {
        self.entries.iter().all(|(pk, sig)| pk.verify(msg, sig))
    }

    /// Verify the multi-signature covers at least the `required` signer set
    /// (by key identity) and that every carried signature is valid.
    pub fn covers(&self, msg: &Digest, required: &[PublicKey]) -> bool {
        if !self.verify_all(msg) {
            return false;
        }
        required.iter().all(|need| self.entries.iter().any(|(pk, _)| pk == need))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn gather_and_verify() {
        let dba = KeyPair::from_seed(b"dba");
        let reg = KeyPair::from_seed(b"regulator");
        let msg = sha256(b"occult journal 7");
        let mut ms = MultiSignature::new();
        ms.add(&dba, &msg);
        ms.add(&reg, &msg);
        assert_eq!(ms.len(), 2);
        assert!(ms.verify_all(&msg));
        assert!(ms.covers(&msg, &[*dba.public(), *reg.public()]));
    }

    #[test]
    fn missing_required_signer_fails_cover() {
        let dba = KeyPair::from_seed(b"dba");
        let reg = KeyPair::from_seed(b"regulator");
        let msg = sha256(b"purge to jsn 100");
        let mut ms = MultiSignature::new();
        ms.add(&dba, &msg);
        assert!(!ms.covers(&msg, &[*dba.public(), *reg.public()]));
    }

    #[test]
    fn wrong_message_fails() {
        let dba = KeyPair::from_seed(b"dba");
        let msg = sha256(b"m");
        let mut ms = MultiSignature::new();
        ms.add(&dba, &msg);
        assert!(!ms.verify_all(&sha256(b"other")));
    }

    #[test]
    fn duplicate_signers_collapse() {
        let dba = KeyPair::from_seed(b"dba");
        let msg = sha256(b"m");
        let mut ms = MultiSignature::new();
        ms.add(&dba, &msg);
        ms.add(&dba, &msg);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn forged_signature_fails() {
        let dba = KeyPair::from_seed(b"dba");
        let mallory = KeyPair::from_seed(b"mallory");
        let msg = sha256(b"m");
        let mut ms = MultiSignature::new();
        // Mallory claims DBA's key but signs with her own.
        ms.add_raw(*dba.public(), mallory.sign(&msg));
        assert!(!ms.verify_all(&msg));
    }
}
