//! A small, explicit binary wire format.
//!
//! Proof objects and ledger snapshots must cross trust boundaries (ledger
//! server → distrusting client; process → disk), so every transportable
//! type implements [`Wire`]: length-prefixed, fixed-endianness, no
//! self-describing overhead, and *total* decoding — malformed input
//! returns [`WireError`], never panics.

use crate::digest::Digest;
use crate::ecdsa::Signature;
use crate::keys::PublicKey;
use std::fmt;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input (or a sanity bound).
    BadLength(u64),
    /// An enum tag byte was out of range.
    BadTag(u8),
    /// A fixed-size value failed validation (e.g. off-curve public key).
    Invalid(&'static str),
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "input ended unexpectedly"),
            WireError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            WireError::Invalid(what) => write!(f, "invalid value: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// An append-only byte sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A bounds-checked cursor over encoded bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the whole input was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("fixed width")))
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("fixed width")))
    }

    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Read a length-prefixed byte string; the prefix is validated against
    /// the remaining input before allocating.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(WireError::BadLength(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read a length prefix for a sequence, bounded by a per-element
    /// minimum size so hostile prefixes cannot trigger huge allocations.
    pub fn get_seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.get_u64()?;
        let bound = (self.remaining() / min_elem_bytes.max(1)) as u64 + 1;
        if len > bound {
            return Err(WireError::BadLength(len));
        }
        Ok(len as usize)
    }
}

/// Types with a canonical binary encoding.
pub trait Wire: Sized {
    fn encode(&self, w: &mut Writer);
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode from a complete byte slice (rejects trailing bytes).
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let out = Self::decode(&mut r)?;
        r.finish()?;
        Ok(out)
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Wire for Digest {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Digest(r.get_raw(32)?.try_into().expect("fixed width")))
    }
}

impl Wire for Signature {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes: [u8; 64] = r.get_raw(64)?.try_into().expect("fixed width");
        Signature::from_bytes(&bytes).ok_or(WireError::Invalid("signature out of range"))
    }
}

impl Wire for PublicKey {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes: [u8; 64] = r.get_raw(64)?.try_into().expect("fixed width");
        PublicKey::from_bytes(&bytes).ok_or(WireError::Invalid("public key off curve"))
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        String::from_utf8(r.get_bytes()?).map_err(|_| WireError::Invalid("non-UTF-8 string"))
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_bytes()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_seq_len(1)?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for crate::multisig::MultiSignature {
    fn encode(&self, w: &mut Writer) {
        let entries: Vec<(PublicKey, Signature)> =
            self.signers().copied().zip(self.signatures().copied()).collect();
        w.put_u64(entries.len() as u64);
        for (pk, sig) in entries {
            pk.encode(w);
            sig.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_seq_len(128)?;
        let mut ms = crate::multisig::MultiSignature::new();
        for _ in 0..len {
            let pk = PublicKey::decode(r)?;
            let sig = Signature::decode(r)?;
            ms.add_raw(pk, sig);
        }
        Ok(ms)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use crate::sha256;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(42);
        w.put_bool(true);
        w.put_bytes(b"hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn digest_and_signature_round_trip() {
        let d = sha256(b"x");
        assert_eq!(Digest::from_wire(&d.to_wire()).unwrap(), d);
        let kp = KeyPair::from_seed(b"wire");
        let sig = kp.sign(&d);
        assert_eq!(Signature::from_wire(&sig.to_wire()).unwrap(), sig);
        assert_eq!(PublicKey::from_wire(&kp.public().to_wire()).unwrap(), *kp.public());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_wire(&v.to_wire()).unwrap(), v);
        let o: Option<String> = Some("clue".into());
        assert_eq!(Option::<String>::from_wire(&o.to_wire()).unwrap(), o);
        let n: Option<String> = None;
        assert_eq!(Option::<String>::from_wire(&n.to_wire()).unwrap(), n);
        let pair: (u64, Vec<u8>) = (9, b"p".to_vec());
        assert_eq!(<(u64, Vec<u8>)>::from_wire(&pair.to_wire()).unwrap(), pair);
    }

    #[test]
    fn truncated_input_errors() {
        let d = sha256(b"x");
        let bytes = d.to_wire();
        assert_eq!(Digest::from_wire(&bytes[..31]), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u64.to_wire();
        bytes.push(0);
        assert_eq!(u64::from_wire(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A sequence claiming u64::MAX elements must fail fast, not OOM.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(Vec::<u64>::from_wire(&bytes), Err(WireError::BadLength(_))));
    }

    #[test]
    fn invalid_signature_rejected() {
        let zeros = [0u8; 64];
        assert!(Signature::from_wire(&zeros).is_err());
    }

    #[test]
    fn off_curve_key_rejected() {
        let junk = [3u8; 64];
        assert!(matches!(PublicKey::from_wire(&junk), Err(WireError::Invalid(_))));
    }
}
