//! secp256k1 group arithmetic in Jacobian coordinates.

use crate::field::{curve_b, fp, gen_x, gen_y};
use crate::u256::U256;

/// An affine point on secp256k1, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Affine {
    Infinity,
    Point { x: U256, y: U256 },
}

impl Affine {
    /// The standard generator G.
    pub fn generator() -> Affine {
        Affine::Point { x: gen_x(), y: gen_y() }
    }

    /// Check the curve equation `y^2 = x^3 + 7`.
    pub fn is_on_curve(&self) -> bool {
        match self {
            Affine::Infinity => true,
            Affine::Point { x, y } => {
                let f = fp();
                f.sq(y) == f.add(&f.mul(&f.sq(x), x), &curve_b())
            }
        }
    }

    pub fn to_jacobian(self) -> Jacobian {
        match self {
            Affine::Infinity => Jacobian::INFINITY,
            Affine::Point { x, y } => Jacobian { x, y, z: U256::ONE },
        }
    }
}

/// A point in Jacobian coordinates `(X, Y, Z)` representing
/// `(X/Z^2, Y/Z^3)`; `Z = 0` encodes infinity.
#[derive(Clone, Copy, Debug)]
pub struct Jacobian {
    pub x: U256,
    pub y: U256,
    pub z: U256,
}

impl Jacobian {
    pub const INFINITY: Jacobian = Jacobian { x: U256::ONE, y: U256::ONE, z: U256::ZERO };

    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Convert back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine {
        if self.is_infinity() {
            return Affine::Infinity;
        }
        let f = fp();
        let z_inv = f.inv(&self.z).expect("nonzero z");
        let z_inv2 = f.sq(&z_inv);
        let z_inv3 = f.mul(&z_inv2, &z_inv);
        Affine::Point { x: f.mul(&self.x, &z_inv2), y: f.mul(&self.y, &z_inv3) }
    }

    /// Point doubling (a = 0 curve; standard dbl-2009-l formulas).
    pub fn double(&self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::INFINITY;
        }
        let f = fp();
        let a = f.sq(&self.x);
        let b = f.sq(&self.y);
        let c = f.sq(&b);
        // d = 2*((x + b)^2 - a - c)
        let xb = f.add(&self.x, &b);
        let mut d = f.sub(&f.sq(&xb), &a);
        d = f.sub(&d, &c);
        d = f.add(&d, &d);
        // e = 3a, f_ = e^2
        let e = f.add(&f.add(&a, &a), &a);
        let f_ = f.sq(&e);
        let x3 = f.sub(&f_, &f.add(&d, &d));
        // y3 = e*(d - x3) - 8c
        let c2 = f.add(&c, &c);
        let c4 = f.add(&c2, &c2);
        let c8 = f.add(&c4, &c4);
        let y3 = f.sub(&f.mul(&e, &f.sub(&d, &x3)), &c8);
        let z3 = {
            let yz = f.mul(&self.y, &self.z);
            f.add(&yz, &yz)
        };
        Jacobian { x: x3, y: y3, z: z3 }
    }

    /// General Jacobian addition (add-2007-bl with doubling fallback).
    pub fn add(&self, other: &Jacobian) -> Jacobian {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let f = fp();
        let z1z1 = f.sq(&self.z);
        let z2z2 = f.sq(&other.z);
        let u1 = f.mul(&self.x, &z2z2);
        let u2 = f.mul(&other.x, &z1z1);
        let s1 = f.mul(&f.mul(&self.y, &other.z), &z2z2);
        let s2 = f.mul(&f.mul(&other.y, &self.z), &z1z1);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = f.sub(&u2, &u1);
        let i = {
            let h2 = f.add(&h, &h);
            f.sq(&h2)
        };
        let j = f.mul(&h, &i);
        let r = {
            let d = f.sub(&s2, &s1);
            f.add(&d, &d)
        };
        let v = f.mul(&u1, &i);
        let mut x3 = f.sub(&f.sq(&r), &j);
        x3 = f.sub(&x3, &f.add(&v, &v));
        let mut y3 = f.mul(&r, &f.sub(&v, &x3));
        let s1j = f.mul(&s1, &j);
        y3 = f.sub(&y3, &f.add(&s1j, &s1j));
        let z3 = {
            let zz = f.add(&self.z, &other.z);
            let t = f.sub(&f.sq(&zz), &z1z1);
            f.mul(&f.sub(&t, &z2z2), &h)
        };
        Jacobian { x: x3, y: y3, z: z3 }
    }

    /// Scalar multiplication, MSB-first double-and-add.
    pub fn mul_scalar(&self, k: &U256) -> Jacobian {
        let mut acc = Jacobian::INFINITY;
        let Some(top) = k.highest_bit() else {
            return acc;
        };
        for i in (0..=top).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }
}

/// A fixed-base window table: `table[i][j-1] = (j << 4i)·G` for 4-bit
/// windows, turning generator multiplication into at most 64 point
/// additions with no doublings. Signing, key generation and every
/// receipt issuance go through this path.
struct FixedBaseTable {
    windows: Vec<[Jacobian; 15]>,
}

impl FixedBaseTable {
    fn build() -> Self {
        let mut windows = Vec::with_capacity(64);
        let mut base = Affine::generator().to_jacobian();
        for _ in 0..64 {
            let mut row = [Jacobian::INFINITY; 15];
            let mut acc = base;
            for slot in row.iter_mut() {
                *slot = acc;
                acc = acc.add(&base);
            }
            windows.push(row);
            // Advance base by 2^4: four doublings.
            base = acc; // acc = 16·base after the loop above.
        }
        FixedBaseTable { windows }
    }
}

fn g_table() -> &'static FixedBaseTable {
    use std::sync::OnceLock;
    static TABLE: OnceLock<FixedBaseTable> = OnceLock::new();
    TABLE.get_or_init(FixedBaseTable::build)
}

/// Multiply the generator by `k` via the fixed-base table.
pub fn mul_generator(k: &U256) -> Jacobian {
    let table = g_table();
    let mut acc = Jacobian::INFINITY;
    for (i, row) in table.windows.iter().enumerate() {
        let limb = k.0[i / 16];
        let digit = ((limb >> ((i % 16) * 4)) & 0xf) as usize;
        if digit != 0 {
            acc = acc.add(&row[digit - 1]);
        }
    }
    acc
}

/// Shamir's trick: compute `a·P + b·Q` with a single shared double chain
/// (halves the doublings of two independent multiplications; used by
/// ECDSA verification).
pub fn double_scalar_mul(a: &U256, p: &Jacobian, b: &U256, q: &Jacobian) -> Jacobian {
    let pq = p.add(q);
    let top = match (a.highest_bit(), b.highest_bit()) {
        (None, None) => return Jacobian::INFINITY,
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (Some(x), Some(y)) => x.max(y),
    };
    let mut acc = Jacobian::INFINITY;
    for i in (0..=top).rev() {
        acc = acc.double();
        match (a.bit(i), b.bit(i)) {
            (true, true) => acc = acc.add(&pq),
            (true, false) => acc = acc.add(p),
            (false, true) => acc = acc.add(q),
            (false, false) => {}
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::fn_order;

    fn g() -> Jacobian {
        Affine::generator().to_jacobian()
    }

    #[test]
    fn double_matches_add() {
        let d = g().double().to_affine();
        let a = g().add(&g()).to_affine();
        assert_eq!(d, a);
        assert!(d.is_on_curve());
    }

    #[test]
    fn known_multiple_2g() {
        // 2G for secp256k1 (public test vector).
        let two_g = g().mul_scalar(&U256::from_u64(2)).to_affine();
        match two_g {
            Affine::Point { x, .. } => assert_eq!(
                x,
                U256::from_hex(
                    "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
                )
                .unwrap()
            ),
            Affine::Infinity => panic!("2G must not be infinity"),
        }
    }

    #[test]
    fn scalar_mul_distributes() {
        // (a+b)G == aG + bG.
        let a = U256::from_u64(123_456);
        let b = U256::from_u64(789_012);
        let ab = U256::from_u64(123_456 + 789_012);
        let lhs = g().mul_scalar(&ab).to_affine();
        let rhs = g().mul_scalar(&a).add(&g().mul_scalar(&b)).to_affine();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn order_times_g_is_infinity() {
        let n = fn_order().m;
        assert!(g().mul_scalar(&n).is_infinity());
    }

    #[test]
    fn shamir_matches_naive() {
        let a = U256::from_u64(0xdeadbeef);
        let b = U256::from_u64(0xcafebabe);
        let q = g().mul_scalar(&U256::from_u64(7));
        let fast = double_scalar_mul(&a, &g(), &b, &q).to_affine();
        let slow = g().mul_scalar(&a).add(&q.mul_scalar(&b)).to_affine();
        assert_eq!(fast, slow);
    }

    #[test]
    fn fixed_base_matches_naive() {
        for k in [1u64, 2, 3, 15, 16, 17, 255, 0xdead_beef, u64::MAX] {
            let k = U256::from_u64(k);
            assert_eq!(
                mul_generator(&k).to_affine(),
                g().mul_scalar(&k).to_affine(),
                "k = {k:?}"
            );
        }
        // A full-width scalar.
        let k = U256::from_hex(
            "f0e1d2c3b4a5968778695a4b3c2d1e0fdeadbeefcafebabe0123456789abcdef",
        )
        .unwrap();
        assert_eq!(mul_generator(&k).to_affine(), g().mul_scalar(&k).to_affine());
    }

    #[test]
    fn fixed_base_zero_is_infinity() {
        assert!(mul_generator(&U256::ZERO).is_infinity());
    }

    #[test]
    fn add_infinity_identities() {
        let p = g().mul_scalar(&U256::from_u64(5));
        assert_eq!(p.add(&Jacobian::INFINITY).to_affine(), p.to_affine());
        assert_eq!(Jacobian::INFINITY.add(&p).to_affine(), p.to_affine());
    }

    #[test]
    fn p_plus_minus_p_is_infinity() {
        let f = fp();
        let p = g().mul_scalar(&U256::from_u64(9)).to_affine();
        let Affine::Point { x, y } = p else { panic!() };
        let neg = Affine::Point { x, y: f.neg(&y) }.to_jacobian();
        assert!(p.to_jacobian().add(&neg).is_infinity());
    }
}
