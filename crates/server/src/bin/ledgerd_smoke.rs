//! Smoke driver for `ledgerd` (used by `scripts/verify.sh`).
//!
//! ```text
//! ledgerd-smoke client  --addr 127.0.0.1:7878 [--seed demo] [--n 16]
//! ledgerd-smoke recover --dir DIR [--seed demo] [--expect-journals N]
//! ```
//!
//! `client` connects as a distrusting [`RemoteLedger`], appends `n`
//! committed transactions (each receipt verified against the client's
//! own replayed chain), then re-proves every jsn against the client's
//! anchor. `recover` reopens the server's directory after a kill and
//! asserts crash recovery came back clean with everything that was
//! acked. Exit code 0 means every check passed.

use ledgerdb_core::recovery::open_durable;
use ledgerdb_core::{LedgerConfig, MemberRegistry, StateBackend, TxRequest};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_server::RemoteLedger;
use ledgerdb_storage::FsyncPolicy;
use ledgerdb_timesvc::clock::SimClock;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: ledgerd-smoke client --addr ADDR [--seed SEED] [--n N]\n\
         \x20      ledgerd-smoke recover --dir DIR [--seed SEED] [--expect-journals N] \
         [--block-size N] [--state-backend mpt|bin]"
    );
    exit(2);
}

fn flags() -> (String, HashMap<String, String>) {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| usage());
    let mut flags = HashMap::new();
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| usage());
        flags.insert(flag, value);
    }
    (mode, flags)
}

fn fail(what: &str) -> ! {
    eprintln!("ledgerd-smoke: FAIL: {what}");
    exit(1);
}

fn main() {
    let (mode, flags) = flags();
    let seed = flags.get("--seed").cloned().unwrap_or_else(|| "demo".into());
    match mode.as_str() {
        "client" => client(flags.get("--addr").unwrap_or_else(|| usage()), &seed, flags
            .get("--n")
            .map(|n| n.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(16)),
        "recover" => recover(
            flags.get("--dir").map(PathBuf::from).unwrap_or_else(|| usage()),
            &seed,
            flags
                .get("--expect-journals")
                .map(|n| n.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(0),
            flags
                .get("--block-size")
                .map(|n| n.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(16),
            flags
                .get("--state-backend")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or_default(),
        ),
        _ => usage(),
    }
}

fn client(addr: &str, seed: &str, n: u64) {
    let alice = KeyPair::from_seed(format!("{seed}-alice").as_bytes());
    let mut remote = match RemoteLedger::connect(addr) {
        Ok(remote) => remote,
        Err(e) => fail(&format!("connect {addr}: {e}")),
    };
    // Nonces continue from the server's journal count so reruns against
    // a persistent directory stay distinct.
    let base = remote.info().journal_count;
    let first_jsn = base;
    for i in 0..n {
        let request = TxRequest::signed(
            &alice,
            format!("smoke-{}-{}", base, i).into_bytes(),
            vec!["smoke".into()],
            base + i,
        );
        // The receipt is verified against the client's own replayed
        // chain before this returns.
        let receipt = match remote.append_committed_verified(request) {
            Ok(receipt) => receipt,
            Err(e) => fail(&format!("append {i}: {e}")),
        };
        if receipt.jsn != first_jsn + i {
            fail(&format!("expected jsn {}, got {}", first_jsn + i, receipt.jsn));
        }
    }
    // Independently re-prove every appended journal against the
    // client's own anchor and root.
    for jsn in first_jsn..first_jsn + n {
        if let Err(e) = remote.prove(jsn) {
            fail(&format!("prove {jsn}: {e}"));
        }
    }
    match remote.prove_clue("smoke") {
        Ok(proof) => {
            if (proof.entries.len() as u64) < n {
                fail(&format!("clue lineage has {} entries, want ≥ {n}", proof.entries.len()));
            }
        }
        Err(e) => fail(&format!("clue proof: {e}")),
    }
    println!(
        "ledgerd-smoke: OK appended={n} verified_journals={} height={}",
        remote.client().verified_journals(),
        remote.client().height()
    );
}

fn recover(
    dir: PathBuf,
    seed: &str,
    expect_journals: u64,
    block_size: u64,
    state_backend: StateBackend,
) {
    let ca = CertificateAuthority::from_seed(seed.as_bytes());
    let alice = KeyPair::from_seed(format!("{seed}-alice").as_bytes());
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry
        .register(ca.issue("alice", Role::User, alice.public()))
        .expect("register demo member");
    let config = LedgerConfig {
        block_size,
        fam_delta: 15,
        name: format!("ledgerd-{seed}"),
        state_backend,
    };
    let (ledger, report) = match open_durable(
        config,
        registry,
        &dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    ) {
        Ok(out) => out,
        Err(e) => fail(&format!("reopen {}: {e}", dir.display())),
    };
    if !report.is_clean() {
        fail(&format!("recovery not clean: {report:?}"));
    }
    if ledger.journal_count() < expect_journals {
        fail(&format!(
            "recovered {} journals, expected at least {expect_journals}",
            ledger.journal_count()
        ));
    }
    // The sticky durability-error flag doubles as a gauge; after a clean
    // recovery it must read 0 (no stashed WAL failure).
    let exposition = ledgerdb_telemetry::render(ledgerdb_telemetry::Registry::global());
    let durability_error = ledgerdb_telemetry::parse_value(&exposition, "ledger_durability_error")
        .unwrap_or_else(|| fail("ledger_durability_error gauge missing from telemetry"));
    if durability_error != 0.0 {
        fail(&format!("ledger_durability_error gauge is {durability_error}, want 0"));
    }
    println!(
        "ledgerd-smoke: OK recovered journals={} blocks={} clean=true durability_error={}",
        ledger.journal_count(),
        ledger.block_count(),
        durability_error
    );
}
