//! `ledgerd` — serve a durable ledger over TCP.
//!
//! ```text
//! ledgerd --dir /var/lib/ledgerdb --bind 127.0.0.1:7878 \
//!         [--workers 4] [--fsync always|never|every-N] \
//!         [--batch-window-us 150] [--batch-max 64] [--no-batch] \
//!         [--proxy-admission] [--block-size 16] [--seed demo]
//! ```
//!
//! The member registry is derived deterministically from `--seed`: a CA
//! and one `User` member ("alice") whose signing seed is
//! `<seed>-alice`. That keeps the binary self-contained for demos and
//! smoke tests; a production deployment would load certificates instead.
//! On startup the ledger is recovered from `--dir` (created if absent)
//! and the recovery report is printed.

use ledgerdb_core::recovery::open_durable;
use ledgerdb_core::{LedgerConfig, MemberRegistry, SharedLedger};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_server::{Admission, BatchConfig, Ledgerd, ServerConfig};
use ledgerdb_storage::FsyncPolicy;
use ledgerdb_timesvc::clock::SimClock;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: ledgerd --dir DIR [--bind ADDR] [--workers N] \
         [--fsync always|never|every-N] [--batch-window-us US] \
         [--batch-max N] [--no-batch] [--proxy-admission] \
         [--block-size N] [--seed SEED]"
    );
    exit(2);
}

struct Args {
    dir: PathBuf,
    bind: String,
    workers: usize,
    fsync: FsyncPolicy,
    batch: Option<BatchConfig>,
    admission: Admission,
    block_size: u64,
    seed: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: PathBuf::new(),
        bind: "127.0.0.1:7878".into(),
        workers: 4,
        fsync: FsyncPolicy::Always,
        batch: Some(BatchConfig::default()),
        admission: Admission::Verify,
        block_size: 16,
        seed: "demo".into(),
    };
    let mut batch = BatchConfig::default();
    let mut batching = true;
    let mut it = std::env::args().skip(1);
    let mut have_dir = false;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match flag.as_str() {
            "--dir" => {
                args.dir = PathBuf::from(value("--dir"));
                have_dir = true;
            }
            "--bind" => args.bind = value("--bind"),
            "--workers" => args.workers = parse_num(&value("--workers")),
            "--fsync" => {
                let v = value("--fsync");
                args.fsync = match v.as_str() {
                    "always" => FsyncPolicy::Always,
                    "never" => FsyncPolicy::Never,
                    other => match other.strip_prefix("every-") {
                        Some(n) => FsyncPolicy::EveryN(parse_num(n)),
                        None => usage(),
                    },
                };
            }
            "--batch-window-us" => {
                batch.max_delay = Duration::from_micros(parse_num(&value("--batch-window-us")));
            }
            "--batch-max" => batch.max_batch = parse_num(&value("--batch-max")),
            "--no-batch" => batching = false,
            // π_c verified by an authenticated proxy tier (Fig 1); the
            // server enforces membership only.
            "--proxy-admission" => args.admission = Admission::ProxyTrusted,
            "--block-size" => args.block_size = parse_num(&value("--block-size")),
            "--seed" => args.seed = value("--seed"),
            _ => usage(),
        }
    }
    if !have_dir {
        usage();
    }
    args.batch = if batching { Some(batch) } else { None };
    args
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number: {s}");
        usage()
    })
}

fn main() {
    let args = parse_args();

    let ca = CertificateAuthority::from_seed(args.seed.as_bytes());
    let alice = KeyPair::from_seed(format!("{}-alice", args.seed).as_bytes());
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry
        .register(ca.issue("alice", Role::User, alice.public()))
        .expect("register demo member");

    let config = LedgerConfig {
        block_size: args.block_size,
        fam_delta: 15,
        name: format!("ledgerd-{}", args.seed),
    };
    // With group commit the streams run at FsyncPolicy::Never and the
    // batcher supplies the per-batch durability barrier; without it,
    // the configured per-append policy applies.
    let policy = if args.batch.is_some() { FsyncPolicy::Never } else { args.fsync };
    let (ledger, report) =
        open_durable(config, registry, &args.dir, policy, Arc::new(SimClock::new()))
            .unwrap_or_else(|e| {
                eprintln!("ledgerd: cannot open ledger at {}: {e}", args.dir.display());
                exit(1);
            });
    eprintln!(
        "ledgerd: recovered {} journals / {} blocks (clean: {}) from {}",
        ledger.journal_count(),
        ledger.block_count(),
        report.is_clean(),
        args.dir.display()
    );

    let shared = SharedLedger::new(ledger);
    let server_config = ServerConfig {
        bind: args.bind.clone(),
        workers: args.workers,
        batch: args.batch,
        admission: args.admission,
        ..ServerConfig::default()
    };
    let server = Ledgerd::start(shared, server_config).unwrap_or_else(|e| {
        eprintln!("ledgerd: cannot bind {}: {e}", args.bind);
        exit(1);
    });
    println!("ledgerd: listening on {}", server.local_addr());

    // Park the main thread; the process lives until it is killed. Every
    // acked append is already durable, so a hard kill recovers clean.
    loop {
        std::thread::park();
    }
}
