//! `ledgerd` — serve a durable ledger over TCP.
//!
//! ```text
//! ledgerd --dir /var/lib/ledgerdb --bind 127.0.0.1:7878 \
//!         [--workers 4]   # connection threads AND (N>1) compute pool \
//!         [--event-loop] [--http-addr 127.0.0.1:7879] \
//!         [--idle-timeout-ms 60000] [--max-connections N] \
//!         [--fsync always|never|every-N] \
//!         [--batch-window-us 150] [--batch-max 64] [--no-batch] \
//!         [--proxy-admission] [--no-snapshot-reads] \
//!         [--block-size 16] [--seed demo] \
//!         [--checkpoint-every-n-seals 64]   # 0 disables \
//!         [--metrics-dump PATH] [--metrics-interval-ms 1000] \
//!         [--slow-op-ms N] [--shards K] [--state-backend mpt|bin]
//! ```
//!
//! State backend (`--state-backend`, default `mpt`): which pluggable
//! state-commitment structure anchors the per-clue latest-payload
//! digests into each sealed block — the 16-ary Merkle Patricia trie
//! (byte-compatible with every pre-flag deployment) or the cached
//! binary trie (`bin`, ~4-8x smaller witnesses). The choice is
//! per-deployment: a data directory written under one backend must be
//! reopened with the same flag (recovery re-derives the state roots
//! and rejects a mismatch).
//!
//! Sharding (`--shards K`, default 1): K independent shard ledgers —
//! each with its own WAL, payload store, and checkpoint ladder under
//! `DIR/shard-<i>` — served behind one address. Requests route by
//! clue (first clue) or member key; global jsns carry the shard id in
//! the high byte. Per-epoch sealed roots anchor into a top-level
//! accumulator so one `GetComposedProof` answers with a shard proof
//! plus the anchor path, verifiable end-to-end by a distrusting
//! client (`RemoteLedger::sync_sharded` + `prove_composed`).
//! `--shards 1` is byte-identical to the pre-sharding layout.
//!
//! Transports: the default server runs a thread per connection.
//! `--event-loop` swaps in the epoll readiness loop
//! (`ledgerdb_server::EventLedgerd`): one loop thread multiplexes every
//! socket, `--workers` sizes the request-dispatch pool, and thousands
//! of concurrent connections cost a table entry each instead of a
//! thread. `--http-addr` (implies `--event-loop`) adds the operator
//! HTTP surface — `/healthz`, `/status`, `/metrics`, `/proof/<jsn>` —
//! on a second listener driven by the same loop. `--idle-timeout-ms`
//! is the loop's progress deadline (slowloris defense);
//! `--max-connections` caps both listeners together, refusing the
//! excess with a typed `Busy` frame / HTTP 503. Responses are
//! byte-identical across both transports.
//!
//! Checkpoints (`--checkpoint-every-n-seals N`, default 64): every N
//! sealed blocks the sealed prefix is serialized into
//! `DIR/checkpoints/` (crash-atomically; content-addressed segments)
//! and the WAL is reset, so a restart replays only the post-checkpoint
//! tail — O(tail), not O(history). A checkpoint write failure degrades
//! to the sticky `ledger_durability_error` gauge (and a typed error on
//! the triggering append); the ledger keeps serving from the WAL. `0`
//! disables checkpointing entirely.
//!
//! Telemetry: every subsystem records into the process-global registry;
//! fetch a snapshot over the wire with `ledgerd-stats --addr ...` (or
//! any client's `Stats` request). `--metrics-dump` additionally writes
//! the exposition to a file every `--metrics-interval-ms` (and once at
//! shutdown); `--trace-dump` writes the flight recorder's retained
//! spans as Chrome-trace JSON (chrome://tracing / Perfetto) on the
//! same cadence; `--slow-op-ms` logs any instrumented span that exceeds
//! the threshold.
//!
//! The member registry is derived deterministically from `--seed`: a CA
//! and one `User` member ("alice") whose signing seed is
//! `<seed>-alice`. That keeps the binary self-contained for demos and
//! smoke tests; a production deployment would load certificates instead.
//! On startup the ledger is recovered from `--dir` (created if absent)
//! and the recovery report is printed.

use ledgerdb_core::recovery::{open_durable, CHECKPOINT_DIR};
use ledgerdb_core::{LedgerConfig, MemberRegistry, ShardedLedger, SharedLedger, StateBackend};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_server::{
    Admission, BatchConfig, EventConfig, EventLedgerd, Ledgerd, ServerConfig,
};
use ledgerdb_storage::checkpoint::{CheckpointStore, CkptIo};
use ledgerdb_storage::FsyncPolicy;
use ledgerdb_timesvc::clock::SimClock;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: ledgerd --dir DIR [--bind ADDR] [--workers N] \
         [--event-loop] [--http-addr ADDR] [--idle-timeout-ms MS] \
         [--max-connections N] \
         [--fsync always|never|every-N] [--batch-window-us US] \
         [--batch-max N] [--no-batch] [--proxy-admission] \
         [--no-snapshot-reads] \
         [--block-size N] [--seed SEED] \
         [--checkpoint-every-n-seals N] [--metrics-dump PATH] \
         [--metrics-interval-ms MS] [--slow-op-ms MS] \
         [--trace-dump PATH] [--shards K] [--state-backend mpt|bin]"
    );
    exit(2);
}

struct Args {
    dir: PathBuf,
    bind: String,
    workers: usize,
    event_loop: bool,
    http_bind: Option<String>,
    idle_timeout: Duration,
    max_connections: Option<usize>,
    fsync: FsyncPolicy,
    batch: Option<BatchConfig>,
    admission: Admission,
    snapshot_reads: bool,
    block_size: u64,
    seed: String,
    checkpoint_every_n_seals: u64,
    metrics_dump: Option<PathBuf>,
    metrics_interval: Duration,
    slow_op: Option<Duration>,
    trace_dump: Option<PathBuf>,
    shards: usize,
    state_backend: StateBackend,
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: PathBuf::new(),
        bind: "127.0.0.1:7878".into(),
        workers: 4,
        event_loop: false,
        http_bind: None,
        idle_timeout: Duration::from_secs(60),
        max_connections: None,
        fsync: FsyncPolicy::Always,
        batch: Some(BatchConfig::default()),
        admission: Admission::Verify,
        snapshot_reads: true,
        block_size: 16,
        seed: "demo".into(),
        checkpoint_every_n_seals: 64,
        metrics_dump: None,
        metrics_interval: Duration::from_millis(1000),
        slow_op: None,
        trace_dump: None,
        shards: 1,
        state_backend: StateBackend::default(),
    };
    let mut batch = BatchConfig::default();
    let mut batching = true;
    let mut it = std::env::args().skip(1);
    let mut have_dir = false;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match flag.as_str() {
            "--dir" => {
                args.dir = PathBuf::from(value("--dir"));
                have_dir = true;
            }
            "--bind" => args.bind = value("--bind"),
            "--workers" => args.workers = parse_num(&value("--workers")),
            "--event-loop" => args.event_loop = true,
            // The HTTP surface is served by the event loop, so asking
            // for one implies the other.
            "--http-addr" => {
                args.http_bind = Some(value("--http-addr"));
                args.event_loop = true;
            }
            "--idle-timeout-ms" => {
                args.idle_timeout = Duration::from_millis(parse_num(&value("--idle-timeout-ms")));
            }
            "--max-connections" => {
                args.max_connections = Some(parse_num(&value("--max-connections")));
            }
            "--fsync" => {
                let v = value("--fsync");
                args.fsync = match v.as_str() {
                    "always" => FsyncPolicy::Always,
                    "never" => FsyncPolicy::Never,
                    other => match other.strip_prefix("every-") {
                        Some(n) => FsyncPolicy::EveryN(parse_num(n)),
                        None => usage(),
                    },
                };
            }
            "--batch-window-us" => {
                batch.max_delay = Duration::from_micros(parse_num(&value("--batch-window-us")));
            }
            "--batch-max" => batch.max_batch = parse_num(&value("--batch-max")),
            "--no-batch" => batching = false,
            // π_c verified by an authenticated proxy tier (Fig 1); the
            // server enforces membership only.
            "--proxy-admission" => args.admission = Admission::ProxyTrusted,
            // Force every read through the ledger lock — the A/B
            // baseline against the lock-free snapshot path.
            "--no-snapshot-reads" => args.snapshot_reads = false,
            "--block-size" => args.block_size = parse_num(&value("--block-size")),
            "--seed" => args.seed = value("--seed"),
            // 0 disables checkpointing (pure WAL replay on restart).
            "--checkpoint-every-n-seals" => {
                args.checkpoint_every_n_seals =
                    parse_num(&value("--checkpoint-every-n-seals"));
            }
            "--metrics-dump" => args.metrics_dump = Some(PathBuf::from(value("--metrics-dump"))),
            "--metrics-interval-ms" => {
                args.metrics_interval =
                    Duration::from_millis(parse_num(&value("--metrics-interval-ms")));
            }
            "--slow-op-ms" => {
                args.slow_op = Some(Duration::from_millis(parse_num(&value("--slow-op-ms"))));
            }
            "--trace-dump" => args.trace_dump = Some(PathBuf::from(value("--trace-dump"))),
            // K shard ledgers behind one server. `--shards 1` (the
            // default) keeps the flat single-ledger layout at DIR;
            // K > 1 stores each shard at DIR/shard-<i>.
            "--shards" => args.shards = parse_num(&value("--shards")),
            // Which state-commitment structure anchors per-clue state
            // into sealed blocks. Must match the data directory's
            // history — recovery rejects a backend mismatch.
            "--state-backend" => {
                let v = value("--state-backend");
                args.state_backend = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --state-backend {v:?} (want mpt or bin)");
                    usage()
                });
            }
            _ => usage(),
        }
    }
    if !have_dir {
        usage();
    }
    args.batch = if batching { Some(batch) } else { None };
    args
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number: {s}");
        usage()
    })
}

fn main() {
    let args = parse_args();

    ledgerdb_telemetry::set_slow_op_threshold(args.slow_op);
    // Held for the process lifetime; writes a final snapshot on exit
    // paths that run destructors (kill -9 readers use `Stats` instead).
    let _dumper = args.metrics_dump.clone().map(|path| {
        ledgerdb_telemetry::Dumper::start(
            ledgerdb_telemetry::Registry::global().clone(),
            path,
            args.metrics_interval,
        )
    });
    // Periodic Chrome-trace snapshot of the flight recorder: everything
    // the rings and pinned buffer currently retain, written atomically
    // (tmp + rename) so the file is always a complete JSON document.
    // Load the dump into chrome://tracing or Perfetto.
    if let Some(path) = args.trace_dump.clone() {
        let interval = args.metrics_interval;
        std::thread::Builder::new()
            .name("trace-dump".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let json = ledgerdb_telemetry::recorder::chrome_trace_json(
                    &ledgerdb_telemetry::recorder::all_events(),
                );
                let tmp = path.with_extension("tmp");
                if std::fs::write(&tmp, json.as_bytes())
                    .and_then(|_| std::fs::rename(&tmp, &path))
                    .is_err()
                {
                    eprintln!("ledgerd: trace dump to {} failed", path.display());
                }
            })
            .expect("spawn trace-dump thread");
    }

    if args.shards == 0 {
        eprintln!("ledgerd: --shards must be at least 1");
        exit(2);
    }
    // With group commit the streams run at FsyncPolicy::Never and the
    // batcher supplies the per-batch durability barrier; without it,
    // the configured per-append policy applies.
    let policy = if args.batch.is_some() { FsyncPolicy::Never } else { args.fsync };
    // `--shards 1` keeps the flat directory layout (byte-compatible
    // with every pre-sharding deployment); K > 1 gives each shard its
    // own WAL, payload store, and checkpoint ladder under DIR/shard-<i>.
    let mut shard_ledgers = Vec::with_capacity(args.shards);
    for i in 0..args.shards {
        let shard_dir = if args.shards == 1 {
            args.dir.clone()
        } else {
            args.dir.join(format!("shard-{i}"))
        };
        let ca = CertificateAuthority::from_seed(args.seed.as_bytes());
        let alice = KeyPair::from_seed(format!("{}-alice", args.seed).as_bytes());
        let mut registry = MemberRegistry::new(*ca.public_key());
        registry
            .register(ca.issue("alice", Role::User, alice.public()))
            .expect("register demo member");
        let config = LedgerConfig {
            block_size: args.block_size,
            fam_delta: 15,
            name: format!("ledgerd-{}", args.seed),
            state_backend: args.state_backend,
        };
        let (mut ledger, report) =
            open_durable(config, registry, &shard_dir, policy, Arc::new(SimClock::new()))
                .unwrap_or_else(|e| {
                    eprintln!("ledgerd: cannot open ledger at {}: {e}", shard_dir.display());
                    exit(1);
                });
        eprintln!(
            "ledgerd: recovered {} journals / {} blocks (clean: {}, checkpoint: {}) from {}",
            ledger.journal_count(),
            ledger.block_count(),
            report.is_clean(),
            if report.checkpoint.is_some() {
                format!("loaded, {} wal records skipped", report.skipped_wal_records)
            } else {
                "none".into()
            },
            shard_dir.display()
        );
        if args.checkpoint_every_n_seals > 0 {
            let store =
                CheckpointStore::open(&shard_dir.join(CHECKPOINT_DIR)).unwrap_or_else(|e| {
                    eprintln!(
                        "ledgerd: cannot open checkpoint store under {}: {e}",
                        shard_dir.display()
                    );
                    exit(1);
                });
            ledger.enable_checkpoints(
                Arc::new(store),
                Arc::new(CkptIo::new()),
                args.checkpoint_every_n_seals,
            );
        }
        shard_ledgers.push(SharedLedger::new(ledger));
    }
    let sharded = ShardedLedger::new(shard_ledgers).unwrap_or_else(|e| {
        eprintln!("ledgerd: {e}");
        exit(2);
    });
    // `--workers N` sizes both thread pools: N connection threads, and
    // (for N > 1) an N-worker compute pool that pipelines batch
    // admission off the write lock, hashes seal subtrees in parallel,
    // and fans out batch proofs. `--workers 1` keeps every compute
    // stage serial — the A/B baseline; results are byte-identical.
    let pool = (args.workers > 1).then(|| ledgerdb_pool::Pool::new(args.workers));
    let mut server_config = ServerConfig {
        bind: args.bind.clone(),
        workers: args.workers,
        batch: args.batch,
        admission: args.admission,
        snapshot_reads: args.snapshot_reads,
        pool,
        ..ServerConfig::default()
    };
    if let Some(cap) = args.max_connections {
        server_config.max_connections = cap;
    }

    if args.event_loop {
        let config = EventConfig {
            server: server_config,
            http_bind: args.http_bind.clone(),
            idle_timeout: args.idle_timeout,
        };
        let server = EventLedgerd::start_sharded(sharded, config).unwrap_or_else(|e| {
            eprintln!("ledgerd: cannot bind {}: {e}", args.bind);
            exit(1);
        });
        println!("ledgerd: listening on {}", server.local_addr());
        if let Some(http) = server.http_addr() {
            println!("ledgerd: http on {http}");
        }
        loop {
            std::thread::park();
        }
    }

    let server = Ledgerd::start_sharded(sharded, server_config).unwrap_or_else(|e| {
        eprintln!("ledgerd: cannot bind {}: {e}", args.bind);
        exit(1);
    });
    println!("ledgerd: listening on {}", server.local_addr());

    // Park the main thread; the process lives until it is killed. Every
    // acked append is already durable, so a hard kill recovers clean.
    loop {
        std::thread::park();
    }
}
