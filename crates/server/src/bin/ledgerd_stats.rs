//! `ledgerd-stats` — fetch and check a running server's telemetry.
//!
//! ```text
//! ledgerd-stats --addr 127.0.0.1:7878 \
//!               [--min NAME=VALUE]... [--zero NAME]... [--quiet]
//! ```
//!
//! Fetches the `Stats` exposition over the wire, prints it, and checks
//! assertions: each `--min NAME=VALUE` requires the metric to read at
//! least `VALUE`; each `--zero NAME` requires exactly 0. Any violation
//! (or a named metric missing from the exposition) exits nonzero, which
//! is what `scripts/verify.sh` keys on. `--quiet` suppresses the dump
//! and prints only check results.

use ledgerdb_server::RemoteLedger;
use ledgerdb_telemetry::parse_value;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: ledgerd-stats --addr ADDR [--min NAME=VALUE]... [--zero NAME]... [--quiet]");
    exit(2);
}

fn main() {
    let mut addr = None;
    let mut mins: Vec<(String, f64)> = Vec::new();
    let mut zeros: Vec<String> = Vec::new();
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--min" => {
                let spec = value("--min");
                let (name, min) = spec.split_once('=').unwrap_or_else(|| {
                    eprintln!("--min wants NAME=VALUE, got {spec:?}");
                    usage()
                });
                let min: f64 = min.parse().unwrap_or_else(|_| {
                    eprintln!("bad --min value in {spec:?}");
                    usage()
                });
                mins.push((name.to_string(), min));
            }
            "--zero" => zeros.push(value("--zero")),
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());

    let mut remote = RemoteLedger::connect(&addr).unwrap_or_else(|e| {
        eprintln!("ledgerd-stats: connect {addr}: {e}");
        exit(1);
    });
    let exposition = remote.stats().unwrap_or_else(|e| {
        eprintln!("ledgerd-stats: stats request: {e}");
        exit(1);
    });
    if !quiet {
        print!("{exposition}");
    }

    let mut failures = 0u32;
    let read = |name: &str| {
        parse_value(&exposition, name).unwrap_or_else(|| {
            eprintln!("ledgerd-stats: FAIL {name} missing from exposition");
            f64::NAN
        })
    };
    for (name, min) in &mins {
        let got = read(name);
        if !(got >= *min) {
            eprintln!("ledgerd-stats: FAIL {name} = {got}, want >= {min}");
            failures += 1;
        } else {
            eprintln!("ledgerd-stats: ok {name} = {got} (>= {min})");
        }
    }
    for name in &zeros {
        let got = read(name);
        if got != 0.0 {
            eprintln!("ledgerd-stats: FAIL {name} = {got}, want 0");
            failures += 1;
        } else {
            eprintln!("ledgerd-stats: ok {name} = 0");
        }
    }
    if failures > 0 {
        exit(1);
    }
}
