//! The LedgerDB service layer: `ledgerd` and its wire protocol.
//!
//! The paper's deployment (Fig 1) interposes proxy/server fleets between
//! clients and the ledger kernel. This crate is that boundary, built on
//! `std` alone:
//!
//! * [`protocol`] — a length-prefixed binary RPC protocol over the
//!   workspace's canonical [`Wire`](ledgerdb_crypto::wire::Wire) codec,
//!   with typed error frames for hostile input;
//! * [`batcher`] — group commit: one fsync barrier amortized across a
//!   window of concurrent appends, acks strictly after durability;
//! * [`service`] — transport-independent request handling, shared by
//!   both servers so their responses are byte-identical;
//! * [`server`] — the thread-pool TCP server with connection limits,
//!   socket timeouts, and graceful drain;
//! * [`event_server`] — the epoll readiness loop ([`ledgerdb_netpoll`])
//!   driving per-connection frame state machines for 10k+ sockets, plus
//!   the [`http`] operator surface (`/healthz`, `/status`, `/metrics`,
//!   `/proof/<jsn>`);
//! * [`remote`] — the distrusting client: syncs blocks into its own
//!   fam replica and verifies every proof and receipt locally.
//!
//! See DESIGN.md §7 for the frame format and the group-commit ordering
//! argument.

pub mod batcher;
pub mod event_server;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod remote;
pub mod server;
pub mod service;

// Unconditionally public: the integration suites (differential servers,
// event-loop hostility) build the same fixtures from outside the crate.
pub mod testutil;

pub use batcher::{Admission, BatchConfig, CommitOutcome, GroupCommitter};
pub use event_server::{EventConfig, EventLedgerd};
pub use metrics::{BatchMetrics, LoopMetrics, ServerMetrics};
pub use protocol::{
    AppendedAck, ErrorCode, ErrorFrame, FrameError, ProofItem, Request, Response, ServerInfo,
    SpanRecord, DEFAULT_MAX_FRAME, PROTOCOL_VERSION, TRACED_PROTOCOL_VERSION,
};
pub use remote::{RemoteConfig, RemoteError, RemoteLedger};
pub use server::{Ledgerd, ServerConfig};
pub use service::RequestService;
