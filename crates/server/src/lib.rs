//! The LedgerDB service layer: `ledgerd` and its wire protocol.
//!
//! The paper's deployment (Fig 1) interposes proxy/server fleets between
//! clients and the ledger kernel. This crate is that boundary, built on
//! `std` alone:
//!
//! * [`protocol`] — a length-prefixed binary RPC protocol over the
//!   workspace's canonical [`Wire`](ledgerdb_crypto::wire::Wire) codec,
//!   with typed error frames for hostile input;
//! * [`batcher`] — group commit: one fsync barrier amortized across a
//!   window of concurrent appends, acks strictly after durability;
//! * [`server`] — the thread-pool TCP server with connection limits,
//!   socket timeouts, and graceful drain;
//! * [`remote`] — the distrusting client: syncs blocks into its own
//!   fam replica and verifies every proof and receipt locally.
//!
//! See DESIGN.md §7 for the frame format and the group-commit ordering
//! argument.

pub mod batcher;
pub mod metrics;
pub mod protocol;
pub mod remote;
pub mod server;

#[cfg(test)]
pub(crate) mod testutil;

pub use batcher::{Admission, BatchConfig, CommitOutcome, GroupCommitter};
pub use metrics::{BatchMetrics, ServerMetrics};
pub use protocol::{
    AppendedAck, ErrorCode, ErrorFrame, FrameError, ProofItem, Request, Response, ServerInfo,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
pub use remote::{RemoteConfig, RemoteError, RemoteLedger};
pub use server::{Ledgerd, ServerConfig};
