//! Shared fixtures for the server crate's tests.

use ledgerdb_core::{LedgerConfig, LedgerDb, MemberRegistry, SharedLedger};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;

/// One registered member ("alice") plus the registry trusting her.
pub fn registry() -> (MemberRegistry, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"server-test-ca");
    let alice = KeyPair::from_seed(b"server-test-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, alice)
}

/// An in-memory shared ledger with the given block size, plus alice.
pub fn shared(block_size: u64) -> (SharedLedger, KeyPair) {
    let (registry, alice) = registry();
    let config =
        LedgerConfig { block_size, fam_delta: 15, name: "server-test".into() };
    (SharedLedger::new(LedgerDb::new(config, registry)), alice)
}
