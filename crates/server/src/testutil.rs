//! Shared fixtures for the server crate's tests.

use ledgerdb_core::{LedgerConfig, LedgerDb, MemberRegistry, ShardedLedger, SharedLedger};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;

/// One registered member ("alice") plus the registry trusting her.
pub fn registry() -> (MemberRegistry, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"server-test-ca");
    let alice = KeyPair::from_seed(b"server-test-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, alice)
}

/// An in-memory shared ledger with the given block size, plus alice.
pub fn shared(block_size: u64) -> (SharedLedger, KeyPair) {
    let (registry, alice) = registry();
    let config =
        LedgerConfig { block_size, fam_delta: 15, name: "server-test".into(), state_backend: Default::default() };
    (SharedLedger::new(LedgerDb::new(config, registry)), alice)
}

/// K in-memory shard ledgers behind one [`ShardedLedger`], plus alice.
/// Every shard shares the registry and config (and therefore the seeded
/// LSP identity), exactly as a real deployment would.
pub fn sharded(k: usize, block_size: u64) -> (ShardedLedger, KeyPair) {
    let shards = (0..k)
        .map(|_| {
            let (registry, _) = registry();
            let config =
                LedgerConfig { block_size, fam_delta: 15, name: "server-test".into(), state_backend: Default::default() };
            SharedLedger::new(LedgerDb::new(config, registry))
        })
        .collect();
    let (_, alice) = registry();
    (ShardedLedger::new(shards).unwrap(), alice)
}
