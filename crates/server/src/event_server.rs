//! `ledgerd --event-loop`: the epoll readiness transport.
//!
//! One loop thread owns a [`Poller`] and every connection; requests are
//! handled by a small dispatch pool (the group committer *blocks* on
//! the fsync barrier, so request handling must never run on the loop
//! thread). The thread-per-connection server caps out at hundreds of
//! sockets; this transport serves tens of thousands, because an idle
//! connection costs one table entry — not a thread.
//!
//! ## Per-connection frame state machine
//!
//! ```text
//!            readable                complete frame          worker done
//! ┌──────┐ ──────────► ┌──────────┐ ─────────────► ┌───────┐ ─────────► ┌───────┐
//! │ IDLE │             │ READING  │                │ BUSY  │            │ WRITE │
//! └──────┘ ◄────────── └──────────┘ ◄───────────── └───────┘ ◄───────── └───────┘
//!            buffer empty   partial frame stays      EPOLLIN off          drain,
//!            & response     buffered; deadline       (backpressure:       then back
//!            flushed        runs on *progress*       one in flight        to IDLE —
//!                           not on bytes             per connection)      or close
//! ```
//!
//! Progress — not traffic — feeds the idle/slowloris deadline: the
//! clock resets when a *complete* frame parses, when a response is
//! enqueued, and when response bytes drain, never on a partial read. A
//! peer trickling one byte a minute therefore hits the same deadline as
//! a silent one, while a connection waiting on its own in-flight
//! request is exempt (the server owes it an answer).
//!
//! Two listeners share the loop: the binary frame protocol and the
//! operator HTTP surface ([`crate::http`]), each driving the same
//! [`RequestService`] the threaded server uses — responses are
//! byte-identical across transports by construction.
//!
//! Overload: a connection past [`ServerConfig::max_connections`] gets a
//! typed `Busy` frame (binary) or `503 + Retry-After` (HTTP) written
//! through the normal state machine — FIN, not RST, so the refusal
//! survives — and is counted on `ledger_conn_rejected_total`.

use crate::http::{self, HttpParse};
use crate::metrics::LoopMetrics;
use crate::protocol::{
    split_trace_envelope, write_frame, ErrorCode, ErrorFrame, Request, Response,
    PROTOCOL_VERSION, TRACED_PROTOCOL_VERSION,
};
use crate::server::ServerConfig;
use crate::service::RequestService;
use ledgerdb_core::{ShardedLedger, SharedLedger};
use ledgerdb_crypto::sync::Mutex;
use ledgerdb_crypto::wire::Wire;
use ledgerdb_netpoll::{Event, Interest, Poller, Token, Waker};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning for the event transport, wrapping the shared [`ServerConfig`]
/// (whose `workers` become the dispatch pool and whose
/// `max_connections` caps *both* listeners together).
#[derive(Clone, Debug)]
pub struct EventConfig {
    pub server: ServerConfig,
    /// Bind address for the HTTP operator surface; `None` disables it.
    pub http_bind: Option<String>,
    /// The idle/slowloris deadline: a connection making no *progress*
    /// (complete frame parsed, response enqueued, or bytes drained) for
    /// this long is closed and its slot freed. Connections with a
    /// request in flight are exempt.
    pub idle_timeout: Duration,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            server: ServerConfig::default(),
            http_bind: None,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Reserved tokens; connections start above these.
const TOK_BINARY_LISTENER: Token = Token(0);
const TOK_HTTP_LISTENER: Token = Token(1);
const TOK_WAKER: Token = Token(2);
const FIRST_CONN: u64 = 3;

#[derive(Clone, Copy)]
enum Proto {
    Binary,
    Http,
}

/// One registered connection's state machine.
struct Conn {
    stream: TcpStream,
    proto: Proto,
    read_buf: Vec<u8>,
    /// Pending response bytes; `write_pos` marks the drained prefix.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// A request is at the workers; reads are off (backpressure).
    in_flight: bool,
    /// Stop reading requests; flush what is queued, then close.
    closing: bool,
    /// Half-close already sent (refusal/hang-up FIN discipline).
    fin_sent: bool,
    /// Peer half-closed its side.
    peer_eof: bool,
    /// Last *progress* instant — see module docs; partial reads do not
    /// touch this.
    last_progress: Instant,
    interest: Interest,
    /// Accepted under the cap and counted on the active gauges; a
    /// refusal never was, so close-time accounting skips it.
    counted: bool,
}

impl Conn {
    fn new(stream: TcpStream, proto: Proto) -> Conn {
        Conn {
            stream,
            proto,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: false,
            closing: false,
            fin_sent: false,
            peer_eof: false,
            last_progress: Instant::now(),
            interest: Interest::NONE,
            counted: false,
        }
    }

    fn pending_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    fn enqueue(&mut self, bytes: &[u8]) {
        // Compact the drained prefix before growing.
        if self.write_pos > 0 {
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        self.write_buf.extend_from_slice(bytes);
    }

    fn wanted_interest(&self) -> Interest {
        let read = !self.in_flight && !self.peer_eof && !(self.closing && self.fin_sent);
        // A refusal/hang-up in FIN-drain still reads (to discard), so
        // EOF arrives and the slot frees promptly.
        let read = read || (self.fin_sent && !self.peer_eof);
        match (read, self.pending_write()) {
            (true, true) => Interest::BOTH,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            (false, false) => Interest::NONE,
        }
    }
}

/// Work shipped to the dispatch pool.
enum Work {
    /// A decoded-length binary frame body, with the trace id its
    /// version-2 envelope carried (if any).
    Binary { body: Vec<u8>, trace: Option<u64> },
    Http { method: String, path: String, keep_alive: bool },
}

struct Job {
    conn: u64,
    work: Work,
}

/// A finished response headed back to the loop thread.
struct Done {
    conn: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// A running event-loop server; dropping it (or calling
/// [`EventLedgerd::shutdown`]) drains gracefully — same contract as the
/// threaded [`crate::Ledgerd`], final checkpoint included.
pub struct EventLedgerd {
    service: Arc<RequestService>,
    local_addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    waker: Arc<Waker>,
    loop_thread: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl EventLedgerd {
    pub fn start(shared: SharedLedger, config: EventConfig) -> io::Result<EventLedgerd> {
        EventLedgerd::start_sharded(ShardedLedger::single(shared), config)
    }

    /// Like [`EventLedgerd::start`], but serving K shard ledgers behind
    /// the same event loop. With K=1 this is byte-identical to `start`.
    pub fn start_sharded(sharded: ShardedLedger, config: EventConfig) -> io::Result<EventLedgerd> {
        let binary = TcpListener::bind(&config.server.bind)?;
        binary.set_nonblocking(true)?;
        let local_addr = binary.local_addr()?;
        let http = match &config.http_bind {
            Some(bind) => {
                let l = TcpListener::bind(bind)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let http_addr = http.as_ref().map(|l| l.local_addr()).transpose()?;

        let service = Arc::new(RequestService::start_sharded(sharded, &config.server));
        let loop_metrics = LoopMetrics::bind(&config.server.registry);
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        poller.register(waker.as_ref(), TOK_WAKER, Interest::READABLE)?;
        poller.register(&binary, TOK_BINARY_LISTENER, Interest::READABLE)?;
        if let Some(http) = &http {
            poller.register(http, TOK_HTTP_LISTENER, Interest::READABLE)?;
        }

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let done = Arc::new(Mutex::new(Vec::<Done>::new()));
        let mut workers = Vec::with_capacity(config.server.workers.max(1));
        for i in 0..config.server.workers.max(1) {
            let service = service.clone();
            let job_rx = job_rx.clone();
            let done = done.clone();
            let waker = waker.clone();
            let loop_metrics = loop_metrics.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("ledgerd-dispatch-{i}"))
                    .spawn(move || dispatch_loop(service, job_rx, done, waker, loop_metrics))?,
            );
        }

        let loop_state = LoopState {
            service: service.clone(),
            config,
            poller,
            waker: waker.clone(),
            binary: Some(binary),
            http,
            conns: HashMap::new(),
            active: 0,
            next_conn: FIRST_CONN,
            job_tx,
            done,
            metrics: loop_metrics,
        };
        let loop_thread =
            thread::Builder::new().name("ledgerd-loop".into()).spawn(move || loop_state.run())?;

        Ok(EventLedgerd {
            service,
            local_addr,
            http_addr,
            waker,
            loop_thread: Mutex::new(Some(loop_thread)),
            workers: Mutex::new(workers),
        })
    }

    /// The binary protocol's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The HTTP surface's bound address, when one was configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Graceful drain, with the same contract as the threaded server:
    /// stop accepting, answer everything in flight, flush, drain the
    /// commit queue, and commit the final checkpoint when a policy is
    /// enabled. Idempotent.
    pub fn shutdown(&self) {
        let first = self.service.begin_drain();
        self.waker.wake();
        if let Some(handle) = self.loop_thread.lock().take() {
            let _ = handle.join();
        }
        // The loop thread dropped the job sender; workers drain queued
        // jobs (their responses die with the closed sockets) and exit.
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
        self.service.finish_drain(first);
    }
}

impl Drop for EventLedgerd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(
    service: Arc<RequestService>,
    job_rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    done: Arc<Mutex<Vec<Done>>>,
    waker: Arc<Waker>,
    metrics: LoopMetrics,
) {
    loop {
        // Hold the receiver lock only while dequeuing.
        let next = job_rx.lock().recv();
        let Ok(job) = next else { return };
        let result = match job.work {
            Work::Binary { body, trace } => {
                let response = match Request::from_wire(&body) {
                    Ok(request) => service.handle_traced(request, trace),
                    // A complete frame that fails to decode leaves the
                    // stream synchronized — typed error, keep serving.
                    Err(e) => Response::Error(ErrorFrame::from_wire_error(&e)),
                };
                if matches!(response, Response::Error(_)) {
                    service.metrics.error_frames.inc();
                }
                frame_bytes(&response).map(|bytes| Done { conn: job.conn, bytes, close: false })
            }
            Work::Http { method, path, keep_alive } => {
                metrics.http_requests.inc();
                let bytes = http::handle(&service, &method, &path, keep_alive);
                Ok(Done { conn: job.conn, bytes, close: !keep_alive })
            }
        };
        let done_item = match result {
            Ok(item) => {
                service.metrics.bytes_out.add(item.bytes.len() as u64);
                item
            }
            // An unencodable response (>u32 frame): the stream cannot
            // be kept synchronized — close it.
            Err(_) => Done { conn: job.conn, bytes: Vec::new(), close: true },
        };
        done.lock().push(done_item);
        waker.wake();
    }
}

/// Encode a response as one wire frame (version · len · body).
fn frame_bytes(response: &Response) -> Result<Vec<u8>, ()> {
    let wire = response.to_wire();
    let mut frame = Vec::with_capacity(5 + wire.len());
    write_frame(&mut frame, &wire).map_err(|_| ())?;
    Ok(frame)
}

struct LoopState {
    service: Arc<RequestService>,
    config: EventConfig,
    poller: Poller,
    waker: Arc<Waker>,
    binary: Option<TcpListener>,
    http: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    /// Connections counted toward `max_connections` — excludes
    /// refusals lingering in FIN-drain, so a refusal storm can't hold
    /// the cap down after real connections close.
    active: usize,
    next_conn: u64,
    job_tx: mpsc::Sender<Job>,
    done: Arc<Mutex<Vec<Done>>>,
    metrics: LoopMetrics,
}

impl LoopState {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let tick = (self.config.idle_timeout / 4).clamp(
            Duration::from_millis(25),
            Duration::from_millis(500),
        );
        let mut next_reap = Instant::now() + tick;
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let wait_started = Instant::now();
            if self.poller.wait(&mut events, Some(tick)).is_err() {
                // A broken poller cannot serve; drop every connection.
                return;
            }
            let process_started = Instant::now();
            self.metrics.iterations.inc();
            self.metrics.wait_seconds.observe_duration(process_started - wait_started);
            self.metrics.events_per_wake.observe(events.len() as u64);

            for i in 0..events.len() {
                let event = events[i];
                match event.token {
                    TOK_BINARY_LISTENER => self.accept_all(Proto::Binary),
                    TOK_HTTP_LISTENER => self.accept_all(Proto::Http),
                    TOK_WAKER => self.waker.drain(),
                    Token(id) => self.drive_conn(id, event),
                }
            }
            self.apply_completions();

            let draining = self.service.draining();
            if draining && self.binary.is_some() {
                // Drain begins: stop accepting (close both listeners),
                // close idle connections now, bound the rest.
                if let Some(listener) = self.binary.take() {
                    let _ = self.poller.deregister(&listener);
                }
                if let Some(listener) = self.http.take() {
                    let _ = self.poller.deregister(&listener);
                }
                drain_deadline =
                    Some(Instant::now() + self.config.server.write_timeout);
                let idle: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| !c.in_flight && !c.pending_write())
                    .map(|(&id, _)| id)
                    .collect();
                for id in idle {
                    self.close_conn(id);
                }
            }

            let now = Instant::now();
            if now >= next_reap {
                next_reap = now + tick;
                self.reap_idle(now);
            }
            if draining {
                if self.conns.is_empty() {
                    return;
                }
                if drain_deadline.is_some_and(|deadline| now >= deadline) {
                    // Stalled peers do not get to hold the drain open.
                    let stuck: Vec<u64> = self.conns.keys().copied().collect();
                    for id in stuck {
                        self.close_conn(id);
                    }
                    return;
                }
            }
            self.metrics.process_seconds.observe_duration(process_started.elapsed());
        }
    }

    fn accept_all(&mut self, proto: Proto) {
        loop {
            let listener = match proto {
                Proto::Binary => self.binary.as_ref(),
                Proto::Http => self.http.as_ref(),
            };
            let Some(listener) = listener else { return };
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            let _ = stream.set_nonblocking(true);
            stream.set_nodelay(true).ok();
            let over_cap = self.active >= self.config.server.max_connections;
            let mut conn = Conn::new(stream, proto);
            if over_cap {
                // Refuse loudly: the typed Busy frame / 503 goes through
                // the ordinary state machine (write, FIN, drain) so the
                // peer reads the refusal instead of eating an RST.
                self.service.metrics.connections_refused.inc();
                self.service.metrics.conn_rejected.inc();
                self.service.metrics.error_frames.inc();
                let refusal = match conn.proto {
                    Proto::Binary => frame_bytes(&RequestService::busy_frame())
                        .expect("busy frame fits a u32 prefix"),
                    Proto::Http => http::busy_response(),
                };
                self.service.metrics.bytes_out.add(refusal.len() as u64);
                conn.enqueue(&refusal);
                conn.closing = true;
            } else {
                conn.counted = true;
                self.active += 1;
                self.service.metrics.connections_total.inc();
                self.service.metrics.connections_active.add(1);
                self.metrics.connections.add(1);
            }
            let id = self.next_conn;
            self.next_conn += 1;
            let token = Token(id);
            let interest = conn.wanted_interest();
            if self.poller.register(&conn.stream, token, interest).is_err() {
                if conn.counted {
                    self.active -= 1;
                    self.service.metrics.connections_active.add(-1);
                    self.metrics.connections.add(-1);
                }
                continue;
            }
            conn.interest = interest;
            self.conns.insert(id, conn);
            // An over-cap refusal flushes on the first writable event;
            // nothing further to do here.
        }
    }

    fn drive_conn(&mut self, id: u64, event: Event) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if event.is_error() {
            self.close_conn(id);
            return;
        }
        if event.writable() && conn.pending_write() && !Self::flush(conn) {
            self.close_conn(id);
            return;
        }
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if event.readable() && !conn.in_flight {
            if !Self::fill(conn) {
                self.close_conn(id);
                return;
            }
            self.parse_and_dispatch(id);
        }
        self.after_io(id);
    }

    /// Drain the socket into `read_buf` (or the void, post-FIN).
    /// False = the connection died.
    fn fill(conn: &mut Conn) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    return true;
                }
                Ok(n) => {
                    if conn.closing {
                        continue; // FIN drain: discard, wait for EOF
                    }
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    // Partial input is deliberately NOT progress — see
                    // the slowloris argument in the module docs.
                    let cap = match conn.proto {
                        Proto::Binary => usize::MAX, // bounded by the frame header check
                        Proto::Http => http::MAX_HEADER_BYTES + 4,
                    };
                    if conn.read_buf.len() > cap.saturating_add(16 * 1024) {
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Write as much of `write_buf` as the socket takes.
    /// False = the connection died.
    fn flush(conn: &mut Conn) -> bool {
        while conn.pending_write() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.write_pos += n;
                    conn.last_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// Advance the state machine after any I/O: finish closes, send the
    /// FIN for hang-ups, and re-arm the poller interest.
    fn after_io(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if conn.closing && !conn.pending_write() && !conn.in_flight {
            if !conn.fin_sent {
                conn.fin_sent = true;
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
            }
            // The refusal/response is flushed and FIN sent; wait for the
            // peer's EOF (or the idle deadline) before dropping, so the
            // kernel never RSTs unread data away.
            if conn.peer_eof {
                self.close_conn(id);
                return;
            }
        } else if conn.peer_eof && !conn.in_flight && !conn.pending_write() {
            // Peer hung up and nothing is owed: a half-delivered frame
            // (non-empty read_buf) can never complete either way.
            self.close_conn(id);
            return;
        }
        let wanted = conn.wanted_interest();
        if wanted != conn.interest
            && self.poller.modify(&conn.stream, Token(id), wanted).is_ok()
        {
            conn.interest = wanted;
        }
    }

    /// Try to cut one complete request out of the buffer and ship it to
    /// the dispatch pool. One in flight per connection: responses stay
    /// in request order and a flooding peer is back-pressured instead of
    /// queued unboundedly.
    fn parse_and_dispatch(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if conn.in_flight || conn.closing {
            return;
        }
        match conn.proto {
            Proto::Binary => {
                if conn.read_buf.is_empty() {
                    return;
                }
                let version = conn.read_buf[0];
                if version != PROTOCOL_VERSION && version != TRACED_PROTOCOL_VERSION {
                    self.hang_up(
                        id,
                        Response::Error(ErrorFrame {
                            code: ErrorCode::UnsupportedVersion,
                            detail: format!(
                                "version {version} not supported (this server speaks {PROTOCOL_VERSION})"
                            ),
                        }),
                    );
                    return;
                }
                if conn.read_buf.len() < 5 {
                    return;
                }
                let len =
                    u32::from_be_bytes(conn.read_buf[1..5].try_into().expect("4 bytes")) as usize;
                let max = self.config.server.max_frame;
                if len > max as usize {
                    self.hang_up(
                        id,
                        Response::Error(ErrorFrame {
                            code: ErrorCode::Oversized,
                            detail: format!(
                                "frame of {len} bytes exceeds the {max}-byte bound"
                            ),
                        }),
                    );
                    return;
                }
                if conn.read_buf.len() < 5 + len {
                    return;
                }
                let raw = conn.read_buf[5..5 + len].to_vec();
                conn.read_buf.drain(..5 + len);
                conn.last_progress = Instant::now();
                self.service.metrics.bytes_in.add(raw.len() as u64 + 5);
                let (trace, body) = if version == TRACED_PROTOCOL_VERSION {
                    match split_trace_envelope(&raw) {
                        Ok((trace, rest)) => (trace, rest.to_vec()),
                        Err(_) => {
                            // Complete frame, malformed envelope: the
                            // body boundary held, but hang up rather
                            // than guess at the peer's framing state —
                            // same posture as the threaded server.
                            self.hang_up(
                                id,
                                Response::Error(ErrorFrame {
                                    code: ErrorCode::BadFrame,
                                    detail: "malformed trace envelope in version-2 frame"
                                        .into(),
                                }),
                            );
                            return;
                        }
                    }
                } else {
                    (None, raw)
                };
                conn.in_flight = true;
                let _ = self.job_tx.send(Job { conn: id, work: Work::Binary { body, trace } });
            }
            Proto::Http => match http::parse_request(&conn.read_buf) {
                HttpParse::Incomplete => {}
                HttpParse::Request { method, path, keep_alive, consumed } => {
                    conn.read_buf.drain(..consumed);
                    conn.last_progress = Instant::now();
                    conn.in_flight = true;
                    self.service.metrics.bytes_in.add(consumed as u64);
                    let _ = self
                        .job_tx
                        .send(Job { conn: id, work: Work::Http { method, path, keep_alive } });
                }
                HttpParse::Reject(bytes) => {
                    self.service.metrics.bytes_out.add(bytes.len() as u64);
                    conn.enqueue(&bytes);
                    conn.closing = true;
                }
            },
        }
    }

    /// Final frame, then close: the stream offset is no longer trusted
    /// (framing violation), so after this response the connection ends
    /// with the FIN-and-drain discipline.
    fn hang_up(&mut self, id: u64, response: Response) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        self.service.metrics.error_frames.inc();
        if let Ok(bytes) = frame_bytes(&response) {
            self.service.metrics.bytes_out.add(bytes.len() as u64);
            conn.enqueue(&bytes);
        }
        conn.closing = true;
        conn.read_buf.clear();
        if !Self::flush(conn) {
            self.close_conn(id);
            return;
        }
        self.after_io(id);
    }

    /// Apply every finished response the dispatch pool queued.
    fn apply_completions(&mut self) {
        let batch: Vec<Done> = std::mem::take(&mut *self.done.lock());
        let draining = self.service.draining();
        for item in batch {
            let Some(conn) = self.conns.get_mut(&item.conn) else { continue };
            conn.in_flight = false;
            conn.last_progress = Instant::now();
            if item.bytes.is_empty() && item.close {
                // Encode failure: nothing to say, nothing to trust.
                self.close_conn(item.conn);
                continue;
            }
            conn.enqueue(&item.bytes);
            if item.close || draining {
                // HTTP `Connection: close`, or the drain contract: the
                // in-flight response is answered, then the socket ends.
                conn.closing = true;
            }
            if !Self::flush(conn) {
                self.close_conn(item.conn);
                continue;
            }
            if draining && !conn.pending_write() {
                // Drain closes as soon as the response is out — the
                // same drop-after-respond the threaded server does —
                // instead of lingering for the peer's EOF.
                self.close_conn(item.conn);
                continue;
            }
            // More pipelined requests may already be buffered. Two
            // paths keep a second frame that arrived in the same write
            // alive while `in_flight` suppressed reads:
            //  * bytes already in `read_buf` — this re-parse picks them
            //    up immediately, no readiness event needed;
            //  * bytes still in the kernel socket buffer — `after_io`
            //    re-arms READABLE and level-triggered epoll re-reports
            //    them on the next poll, even though the edge happened
            //    while interest was NONE.
            // Covered by the pipelined-frames tests in
            // `tests/event_loop.rs`.
            self.parse_and_dispatch(item.conn);
            self.after_io(item.conn);
        }
    }

    /// The slowloris reaper: close every connection past the progress
    /// deadline. In-flight connections are exempt — the server owes
    /// them a response and closes (if ever) only after writing it.
    fn reap_idle(&mut self, now: Instant) {
        let idle = self.config.idle_timeout;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.in_flight && now.duration_since(c.last_progress) >= idle)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.close_conn(id);
        }
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.poller.deregister(&conn.stream);
            if conn.counted {
                self.active -= 1;
                self.service.metrics.connections_active.add(-1);
                self.metrics.connections.add(-1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_frame, DEFAULT_MAX_FRAME};
    use crate::BatchConfig;
    use crate::remote::RemoteLedger;
    use crate::testutil::shared;
    use ledgerdb_core::TxRequest;
    use ledgerdb_telemetry::{parse_value, Registry};

    fn config() -> EventConfig {
        EventConfig {
            server: ServerConfig {
                registry: Arc::new(Registry::new()),
                batch: Some(BatchConfig { max_batch: 16, max_delay: Duration::from_millis(5) }),
                ..ServerConfig::default()
            },
            http_bind: Some("127.0.0.1:0".into()),
            idle_timeout: Duration::from_secs(60),
        }
    }

    /// Read one HTTP response (headers + Content-Length body) as text.
    fn read_http(stream: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            let header_end = buf.windows(4).position(|w| w == b"\r\n\r\n");
            if let Some(end) = header_end {
                let header = String::from_utf8_lossy(&buf[..end]).to_string();
                let len: usize = header
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .map(|v| v.trim().parse().expect("numeric content-length"))
                    .expect("Content-Length present");
                while buf.len() < end + 4 + len {
                    let n = stream.read(&mut chunk).expect("body read");
                    assert!(n > 0, "EOF mid-body");
                    buf.extend_from_slice(&chunk[..n]);
                }
                return String::from_utf8_lossy(&buf[..end + 4 + len]).to_string();
            }
            let n = stream.read(&mut chunk).expect("header read");
            assert!(n > 0, "EOF before header end: {:?}", String::from_utf8_lossy(&buf));
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn remote_round_trip_over_the_event_loop() {
        let (shared, alice) = shared(4);
        let server = EventLedgerd::start(shared, config()).unwrap();
        let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
        for i in 0..6u64 {
            let (jsn, _) = remote
                .append(TxRequest::signed(&alice, format!("ev-{i}").into_bytes(), vec![], i))
                .unwrap();
            assert_eq!(jsn, i);
        }
        // The verifying read path works across the loop too: sync the
        // client replica, then prove against the client's own anchor.
        remote.sync().unwrap();
        assert!(remote.client().verified_journals() >= 4);
        let (tx_hash, proof) = remote.prove(1).unwrap();
        remote.client().verify_existence(&tx_hash, &proof).unwrap();
        server.shutdown();
    }

    #[test]
    fn http_endpoints_answer_with_keep_alive_over_the_loop() {
        let (shared, alice) = shared(4);
        let server = EventLedgerd::start(shared, config()).unwrap();
        let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
        for i in 0..5u64 {
            remote
                .append(TxRequest::signed(&alice, format!("h-{i}").into_bytes(), vec![], i))
                .unwrap();
        }
        let http = server.http_addr().expect("http listener configured");
        let mut stream = TcpStream::connect(http).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        // Three requests on ONE connection: keep-alive over the loop.
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let health = read_http(&mut stream);
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        stream.write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let status = read_http(&mut stream);
        assert!(status.contains("\"journal_count\":5"), "{status}");
        assert!(status.contains("\"draining\":false"), "{status}");

        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let metrics = read_http(&mut stream);
        assert!(metrics.contains("server_http_requests_total"), "{metrics}");
        // Both the binary session and this HTTP socket are registered.
        assert!(metrics.contains("server_loop_connections 2"), "{metrics}");

        // A proof fetched over HTTP matches the binary protocol's.
        stream.write_all(b"GET /proof/1 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let proof = read_http(&mut stream);
        assert!(proof.contains("\"jsn\":1"), "{proof}");
        assert!(proof.contains("\"tx_hash\":\""), "{proof}");
        server.shutdown();
    }

    #[test]
    fn over_cap_connections_get_busy_on_both_protocols() {
        let (shared, _) = shared(4);
        let mut cfg = config();
        cfg.server.max_connections = 1;
        let registry = cfg.server.registry.clone();
        let server = EventLedgerd::start(shared, cfg).unwrap();
        // Occupy the single slot.
        let mut first = RemoteLedger::connect(server.local_addr()).unwrap();

        // Binary refusal: a typed Busy frame, not an EOF.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        match Response::from_wire(&body).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Busy),
            other => panic!("expected Busy, got {other:?}"),
        }
        drop(stream);

        // HTTP refusal: 503 + Retry-After on the operator plane.
        let mut http = TcpStream::connect(server.http_addr().unwrap()).unwrap();
        http.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        http.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let refused = read_http(&mut http);
        assert!(refused.starts_with("HTTP/1.1 503"), "{refused}");
        assert!(refused.contains("Retry-After: 1"), "{refused}");
        drop(http);

        // The occupied session still works, and the refusals counted.
        first.sync().unwrap();
        let text = ledgerdb_telemetry::render(&registry);
        assert_eq!(parse_value(&text, "ledger_conn_rejected_total"), Some(2.0), "{text}");
        server.shutdown();
    }

    #[test]
    fn remote_retries_through_busy_and_lands() {
        let (shared, alice) = shared(4);
        let mut cfg = config();
        cfg.server.max_connections = 1;
        let server = EventLedgerd::start(shared, cfg).unwrap();
        let addr = server.local_addr();
        // Hold the only slot briefly, then release it while a second
        // client dials through its Busy-aware backoff.
        let holder = RemoteLedger::connect(addr).unwrap();
        let waiter = std::thread::spawn(move || {
            let mut remote = RemoteLedger::connect_with(
                addr,
                crate::remote::RemoteConfig {
                    backoff_initial: Duration::from_millis(50),
                    max_reconnect_attempts: 20,
                    ..crate::remote::RemoteConfig::default()
                },
            )
            .unwrap();
            remote.append(TxRequest::signed(&alice, b"after-busy".to_vec(), vec![], 0)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(200));
        drop(holder);
        let (jsn, _) = waiter.join().expect("busy-aware dial succeeded");
        assert_eq!(jsn, 0);
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_finishes_inflight_appends() {
        let (shared, alice) = shared(4);
        let server = EventLedgerd::start(shared, config()).unwrap();
        let addr = server.local_addr();
        let results = std::thread::scope(|scope| {
            let appender = scope.spawn(move || {
                let mut remote = RemoteLedger::connect(addr).unwrap();
                (0..16u64)
                    .map(|i| {
                        remote.append(TxRequest::signed(
                            &alice,
                            format!("evd-{i}").into_bytes(),
                            vec![],
                            i,
                        ))
                    })
                    .collect::<Vec<_>>()
            });
            std::thread::sleep(Duration::from_millis(40));
            server.shutdown();
            appender.join().unwrap()
        });
        let acked = results.iter().filter(|r| r.is_ok()).count();
        assert!(acked >= 1, "at least one append should have landed");
        for r in results.iter().filter(|r| r.is_err()) {
            match r.as_ref().unwrap_err() {
                crate::remote::RemoteError::Server(f) => {
                    assert_eq!(f.code, ErrorCode::ShuttingDown, "unexpected server error: {f}")
                }
                crate::remote::RemoteError::Frame(_) => {} // torn down mid-drain
                other => panic!("unexpected failure kind: {other}"),
            }
        }
    }

    #[test]
    fn framing_violations_get_typed_hangups() {
        let (shared, _) = shared(4);
        let server = EventLedgerd::start(shared, config()).unwrap();

        // Wrong version byte.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&[9, 0, 0, 0, 1, 0]).unwrap();
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        match Response::from_wire(&body).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedVersion),
            other => panic!("expected version error, got {other:?}"),
        }

        // Oversized length prefix.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut frame = vec![PROTOCOL_VERSION];
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        stream.write_all(&frame).unwrap();
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        match Response::from_wire(&body).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Oversized),
            other => panic!("expected oversize error, got {other:?}"),
        }
        server.shutdown();
    }
}
