//! `ledgerd`: a thread-pool TCP server over a [`SharedLedger`].
//!
//! One acceptor thread hands sockets to a fixed worker pool over a
//! channel; each worker serves one connection at a time,
//! request/response, until the peer hangs up. Appends route through the
//! group-commit [`GroupCommitter`] when batching is enabled, or commit
//! individually (per-append fsync) when it is not — either way a
//! success response is only written after the append is durable.
//!
//! Request handling itself lives in [`crate::service::RequestService`],
//! shared verbatim with the epoll transport
//! ([`crate::event_server::EventLedgerd`]) so both produce
//! byte-identical responses.
//!
//! Robustness posture:
//! * connection cap — sockets past [`ServerConfig::max_connections`]
//!   get a typed `Busy` error frame (an explicit retry-with-backoff
//!   invitation) and are closed, never queued unboundedly;
//! * per-socket read/write timeouts — a stalled peer cannot pin a
//!   worker forever; the read timeout doubles as the shutdown poll;
//! * graceful shutdown — [`Ledgerd::shutdown`] stops the acceptor,
//!   lets every in-flight request finish (its response is written),
//!   closes idle connections at their next timeout tick, drains the
//!   commit queue, and joins every thread;
//! * sticky durability errors — after every write-path request the
//!   server polls [`SharedLedger::take_durability_error`], so an
//!   auto-seal WAL failure surfaces as a typed `Durability` error on
//!   the very request that triggered it instead of lurking until some
//!   later fallible write.

use crate::batcher::{Admission, BatchConfig};
use crate::protocol::{
    read_frame_traced, write_frame, ErrorCode, ErrorFrame, FrameError, Request, Response,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use crate::service::RequestService;
use ledgerdb_core::{ShardedLedger, SharedLedger};
use ledgerdb_crypto::sync::Mutex;
use ledgerdb_crypto::wire::Wire;
use ledgerdb_telemetry::Registry;
use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub bind: String,
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Accepted-connection cap; excess connections are refused with a
    /// typed `Unavailable` frame.
    pub max_connections: usize,
    /// Per-socket read timeout. Also the shutdown-poll granularity for
    /// idle connections.
    pub read_timeout: Duration,
    /// Per-socket write timeout.
    pub write_timeout: Duration,
    /// Largest accepted frame body.
    pub max_frame: u32,
    /// Group-commit window; `None` commits each append individually.
    pub batch: Option<BatchConfig>,
    /// Where π_c is checked (see [`Admission`]). Defaults to verifying
    /// every request at the server.
    pub admission: Admission,
    /// Serve sealed-prefix reads lock-free from the published
    /// [`ledgerdb_core::ReadSnapshot`] (default). Disable to force every
    /// read through the ledger lock — the A/B baseline for benchmarks.
    pub snapshot_reads: bool,
    /// Telemetry sink for the server, its committer, and the `Stats`
    /// exposition. Defaults to the process-global registry; tests bind
    /// their own for isolation.
    pub registry: Arc<Registry>,
    /// Compute pool for the CPU-parallel append/proof pipeline:
    /// off-lock batch admission + digest precompute, parallel seal
    /// hashing, and fanned-out batch proofs. `None` (the default) keeps
    /// every stage serial — the A/B baseline.
    pub pool: Option<Arc<ledgerdb_pool::Pool>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".into(),
            workers: 4,
            max_connections: 64,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(5),
            max_frame: DEFAULT_MAX_FRAME,
            batch: Some(BatchConfig::default()),
            admission: Admission::Verify,
            snapshot_reads: true,
            registry: Registry::global().clone(),
            pool: None,
        }
    }
}

struct ServerState {
    service: RequestService,
    config: ServerConfig,
    active_connections: AtomicUsize,
}

/// A running server; dropping it (or calling [`Ledgerd::shutdown`])
/// stops it gracefully.
pub struct Ledgerd {
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Ledgerd {
    /// Bind and start serving a single-ledger deployment.
    pub fn start(shared: SharedLedger, config: ServerConfig) -> io::Result<Ledgerd> {
        Ledgerd::start_sharded(ShardedLedger::single(shared), config)
    }

    /// Bind and start serving a sharded deployment. With K=1 this is
    /// byte-identical to [`Ledgerd::start`].
    pub fn start_sharded(sharded: ShardedLedger, config: ServerConfig) -> io::Result<Ledgerd> {
        let listener = TcpListener::bind(&config.bind)?;
        let local_addr = listener.local_addr()?;
        let service = RequestService::start_sharded(sharded, &config);
        let state = Arc::new(ServerState {
            service,
            config,
            active_connections: AtomicUsize::new(0),
        });

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(state.config.workers.max(1));
        for i in 0..state.config.workers.max(1) {
            let state = state.clone();
            let conn_rx = conn_rx.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("ledgerd-worker-{i}"))
                    .spawn(move || worker_loop(state, conn_rx))?,
            );
        }

        let acceptor_state = state.clone();
        let acceptor = thread::Builder::new()
            .name("ledgerd-acceptor".into())
            .spawn(move || acceptor_loop(acceptor_state, listener, conn_tx))?;

        Ok(Ledgerd {
            state,
            local_addr,
            acceptor: Mutex::new(Some(acceptor)),
            workers: Mutex::new(workers),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests,
    /// drain the commit queue, join every thread, and — with a
    /// checkpoint policy enabled — flush the sealed prefix into a final
    /// checkpoint so the next start replays only the unsealed tail.
    /// Idempotent.
    pub fn shutdown(&self) {
        let first = self.state.service.begin_drain();
        // Unblock the acceptor's `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.acceptor.lock().take() {
            let _ = handle.join();
        }
        // The acceptor dropped the connection sender; workers drain any
        // queued sockets (each sees the shutdown flag at its next frame
        // boundary) and exit.
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
        self.state.service.finish_drain(first);
    }
}

impl Drop for Ledgerd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(
    state: Arc<ServerState>,
    listener: TcpListener,
    conn_tx: mpsc::Sender<TcpStream>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        stream.set_nodelay(true).ok();
        if state.service.draining() {
            return; // conn_tx drops here; workers wind down.
        }
        if state.active_connections.load(Ordering::SeqCst) >= state.config.max_connections {
            refuse(stream, &state);
            continue;
        }
        state.active_connections.fetch_add(1, Ordering::SeqCst);
        state.service.metrics.connections_total.inc();
        state.service.metrics.connections_active.add(1);
        if conn_tx.send(stream).is_err() {
            return;
        }
    }
}

/// Tell an over-limit client why it is being dropped (best effort): a
/// typed `Busy` frame — an explicit retry-with-backoff invitation —
/// never a silent close.
fn refuse(stream: TcpStream, state: &ServerState) {
    state.service.metrics.connections_refused.inc();
    state.service.metrics.conn_rejected.inc();
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    // The refused peer may already have a `Hello` in flight; a straight
    // close would RST and destroy the refusal before it is read. The
    // hang-up path half-closes and drains, so the frame arrives.
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    hang_up(state, stream, RequestService::busy_frame());
}

fn worker_loop(state: Arc<ServerState>, conn_rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        // Hold the receiver lock only while dequeuing.
        let next = conn_rx.lock().recv();
        match next {
            Ok(stream) => {
                serve_connection(&state, stream);
                state.active_connections.fetch_sub(1, Ordering::SeqCst);
                state.service.metrics.connections_active.add(-1);
            }
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

fn serve_connection(state: &ServerState, mut stream: TcpStream) {
    if stream.set_read_timeout(Some(state.config.read_timeout)).is_err()
        || stream.set_write_timeout(Some(state.config.write_timeout)).is_err()
    {
        return;
    }
    // Buffer the read side (one syscall per frame instead of three);
    // responses are already a single buffered `write_all` per frame.
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::with_capacity(16 * 1024, clone),
        Err(_) => return,
    };
    loop {
        let (wire_trace, body) = match read_frame_traced(&mut reader, state.config.max_frame) {
            Ok(frame) => frame,
            Err(e) if e.is_timeout() => {
                if state.service.draining() {
                    return; // idle connection during drain
                }
                continue;
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::BadVersion(v)) => {
                // The stream offset is now unsynchronized; answer and
                // hang up.
                hang_up(
                    state,
                    stream,
                    Response::Error(ErrorFrame {
                        code: ErrorCode::UnsupportedVersion,
                        detail: format!(
                            "version {v} not supported (this server speaks {PROTOCOL_VERSION})"
                        ),
                    }),
                );
                return;
            }
            Err(FrameError::Oversized { len, max }) => {
                hang_up(
                    state,
                    stream,
                    Response::Error(ErrorFrame {
                        code: ErrorCode::Oversized,
                        detail: format!("frame of {len} bytes exceeds the {max}-byte bound"),
                    }),
                );
                return;
            }
            Err(FrameError::BadEnvelope) => {
                // A version-2 frame with a malformed trace envelope; the
                // body boundary was still honored, but answer and hang up
                // rather than guess at the peer's framing state.
                hang_up(
                    state,
                    stream,
                    Response::Error(ErrorFrame {
                        code: ErrorCode::BadFrame,
                        detail: "malformed trace envelope in version-2 frame".into(),
                    }),
                );
                return;
            }
            // Write-side-only error; never produced by `read_frame`.
            Err(FrameError::FrameTooLarge { .. }) => return,
            // Client-side batch-accounting error; never produced here.
            Err(FrameError::BatchLengthMismatch { .. }) => return,
            Err(FrameError::Io(_)) => return,
        };
        // +5: the version byte and length prefix of the frame header.
        state.service.metrics.bytes_in.add(body.len() as u64 + 5);
        let response = match Request::from_wire(&body) {
            Ok(request) => state.service.handle_traced(request, wire_trace),
            // A complete frame that fails to decode leaves the stream
            // synchronized — answer with a typed error and keep serving.
            Err(e) => Response::Error(ErrorFrame::from_wire_error(&e)),
        };
        if !respond(state, &mut stream, response) {
            return;
        }
        if state.service.draining() {
            return; // in-flight request finished; close before the next
        }
    }
}

/// Write one response frame; false when the connection is unusable.
fn respond(state: &ServerState, stream: &mut TcpStream, response: Response) -> bool {
    let wire = response.to_wire();
    if matches!(response, Response::Error(_)) {
        state.service.metrics.error_frames.inc();
    }
    state.service.metrics.bytes_out.add(wire.len() as u64 + 5);
    write_frame(stream, &wire).is_ok()
}

/// Final answer on a connection whose stream offset is no longer
/// trusted: write the error frame, half-close, and drain leftover
/// client bytes so the close sends FIN rather than RST (an RST would
/// destroy the error frame before the peer reads it).
fn hang_up(state: &ServerState, mut stream: TcpStream, response: Response) {
    if !respond(state, &mut stream, response) {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 4096];
    // Bounded drain: the peer either hangs up after reading the error
    // (Ok(0)) or keeps talking into the void until we give up.
    for _ in 0..8 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => return,
            Ok(_) => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame;
    use crate::remote::RemoteLedger;
    use crate::testutil::shared;
    use ledgerdb_core::TxRequest;
    use std::io::Write as _;

    fn start(block_size: u64, batch: Option<BatchConfig>) -> (Ledgerd, ledgerdb_crypto::keys::KeyPair) {
        let (shared, alice) = shared(block_size);
        let config = ServerConfig { batch, ..ServerConfig::default() };
        let server = Ledgerd::start(shared, config).unwrap();
        (server, alice)
    }

    #[test]
    fn round_trip_over_tcp() {
        let (server, alice) = start(4, Some(BatchConfig::default()));
        let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
        for i in 0..8u64 {
            let receipt = remote
                .append_committed(TxRequest::signed(
                    &alice,
                    format!("tcp-{i}").into_bytes(),
                    vec!["tcp".into()],
                    i,
                ))
                .unwrap();
            assert_eq!(receipt.jsn, i);
        }
        remote.sync().unwrap();
        assert_eq!(remote.client().verified_journals(), 8);
        let (tx_hash, proof) = remote.prove(3).unwrap();
        remote.client().verify_existence(&tx_hash, &proof).unwrap();
        server.shutdown();
    }

    #[test]
    fn unbatched_server_serves_appends() {
        let (server, alice) = start(4, None);
        let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
        let (jsn, _) = remote
            .append(TxRequest::signed(&alice, b"plain".to_vec(), vec![], 0))
            .unwrap();
        assert_eq!(jsn, 0);
        server.shutdown();
    }

    #[test]
    fn batched_endpoints_round_trip_with_pool() {
        let (shared, alice) = shared(8);
        let registry = Arc::new(Registry::new());
        let pool = ledgerdb_pool::Pool::with_registry(3, &registry);
        let config = ServerConfig {
            registry: registry.clone(),
            pool: Some(pool),
            ..ServerConfig::default()
        };
        let server = Ledgerd::start(shared.clone(), config).unwrap();
        let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();

        // One frame, one commit: 20 good requests and a stranger's.
        let stranger = ledgerdb_crypto::keys::KeyPair::from_seed(b"batch-stranger");
        let mut requests: Vec<TxRequest> = (0..20u64)
            .map(|i| {
                TxRequest::signed(&alice, format!("batch-{i}").into_bytes(), vec!["b".into()], i)
            })
            .collect();
        requests.insert(7, TxRequest::signed(&stranger, b"intruder".to_vec(), vec![], 99));
        let results = remote.append_batch(requests).unwrap();
        assert_eq!(results.len(), 21);
        assert_eq!(results[7].as_ref().unwrap_err().code, ErrorCode::Rejected);
        // Positional acks with dense jsns: the rejected item consumed
        // no jsn, its successors shifted down by one.
        let jsns: Vec<u64> = results
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 7)
            .map(|(_, r)| r.as_ref().unwrap().0)
            .collect();
        assert_eq!(jsns, (0..20).collect::<Vec<_>>());
        assert_eq!(shared.journal_count(), 20);

        // Batch proofs against the client's own anchor: sync the sealed
        // prefix (block_size 8 → blocks at 8 and 16), then prove the
        // covered jsns plus one absurd jsn whose per-item error must not
        // poison its siblings. Every returned proof was verified against
        // the client's own root inside prove_batch.
        shared.seal_block();
        remote.sync().unwrap();
        let covered = remote.client().verified_journals();
        assert!(covered >= 16, "sealed prefix should cover the appends, got {covered}");
        let mut jsns: Vec<u64> = (0..covered).collect();
        jsns.push(10_000);
        let proofs = remote.prove_batch(jsns).unwrap();
        assert_eq!(proofs.len(), covered as usize + 1);
        assert!(proofs[..covered as usize].iter().all(|p| p.is_ok()));
        assert_eq!(proofs[covered as usize].as_ref().unwrap_err().code, ErrorCode::NotFound);

        // The pool actually carried work for both stages.
        let text = ledgerdb_telemetry::render(&registry);
        let tasks = ledgerdb_telemetry::parse_value(&text, "ledger_pool_tasks_total").unwrap();
        assert!(tasks > 0.0, "pool tasks should have run:\n{text}");
        server.shutdown();
    }

    #[test]
    fn batched_appends_match_serial_results_without_pool() {
        // The same wire request against a pool-less server takes the
        // serial batched path — same acks, same ledger state.
        let (server, alice) = start(8, None);
        let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
        let requests: Vec<TxRequest> = (0..5u64)
            .map(|i| TxRequest::signed(&alice, format!("serial-{i}").into_bytes(), vec![], i))
            .collect();
        let results = remote.append_batch(requests).unwrap();
        let jsns: Vec<u64> = results.iter().map(|r| r.as_ref().unwrap().0).collect();
        assert_eq!(jsns, vec![0, 1, 2, 3, 4]);
        server.shutdown();
    }

    #[test]
    fn hostile_bytes_get_typed_errors_not_hangups() {
        let (server, _) = start(4, None);
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A syntactically valid frame carrying garbage: typed BadTag,
        // connection stays usable.
        write_frame(&mut stream, &[0xEE, 0x01, 0x02]).unwrap();
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        match Response::from_wire(&body).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadTag),
            other => panic!("expected error frame, got {other:?}"),
        }
        // Still serving on the same socket.
        write_frame(&mut stream, &Request::GetAnchor.to_wire()).unwrap();
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        assert!(matches!(Response::from_wire(&body).unwrap(), Response::Anchor(_)));

        // An oversized frame: typed error, then hangup.
        let mut huge = vec![PROTOCOL_VERSION];
        huge.extend_from_slice(&(DEFAULT_MAX_FRAME + 1).to_be_bytes());
        stream.write_all(&huge).unwrap();
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        match Response::from_wire(&body).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Oversized),
            other => panic!("expected error frame, got {other:?}"),
        }

        // A wrong version byte on a fresh connection.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(&[9, 0, 0, 0, 0]).unwrap();
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        match Response::from_wire(&body).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedVersion),
            other => panic!("expected error frame, got {other:?}"),
        }
        // Server hung up after the framing violation.
        let mut probe = [0u8; 1];
        stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(stream.read(&mut probe).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn stats_request_exposes_consistent_counters() {
        use ledgerdb_telemetry::parse_value;

        let (shared, alice) = shared(1024);
        let registry = Arc::new(Registry::new());
        let config = ServerConfig { registry: registry.clone(), ..ServerConfig::default() };
        let server = Ledgerd::start(shared, config).unwrap();
        let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
        let n = 8u64;
        for i in 0..n {
            remote
                .append(TxRequest::signed(&alice, format!("s-{i}").into_bytes(), vec![], i))
                .unwrap();
        }
        let text = remote.stats().unwrap();
        // Every append was counted at its request kind and admitted
        // under the default Verify mode; nothing errored.
        assert_eq!(parse_value(&text, "server_req_append_total"), Some(n as f64), "{text}");
        assert_eq!(parse_value(&text, "server_req_append_seconds_count"), Some(n as f64));
        assert_eq!(parse_value(&text, "server_admission_verify_total"), Some(n as f64));
        assert_eq!(parse_value(&text, "server_error_frames_total"), Some(0.0));
        assert_eq!(parse_value(&text, "server_connections_active"), Some(1.0));
        assert!(parse_value(&text, "server_connections_total").unwrap() >= 1.0);
        // Frame accounting: n appends + hello + this stats request all
        // moved bytes both ways.
        assert!(parse_value(&text, "server_bytes_in_total").unwrap() > 0.0);
        assert!(parse_value(&text, "server_bytes_out_total").unwrap() > 0.0);
        // The batcher drained every append through at least one window.
        assert!(parse_value(&text, "batch_windows_total").unwrap() >= 1.0);
        assert_eq!(parse_value(&text, "batch_size_sum"), Some(n as f64));
        assert_eq!(parse_value(&text, "batch_queue_depth"), Some(0.0));
        // A request that errors is counted.
        let err = remote
            .append(TxRequest::signed(
                &ledgerdb_crypto::keys::KeyPair::from_seed(b"stranger"),
                b"x".to_vec(),
                vec![],
                99,
            ))
            .unwrap_err();
        assert!(matches!(err, crate::remote::RemoteError::Server(_)));
        let text = remote.stats().unwrap();
        assert_eq!(parse_value(&text, "server_error_frames_total"), Some(1.0));
        server.shutdown();
    }

    #[test]
    fn connection_limit_refuses_with_typed_error() {
        let (shared, _) = shared(4);
        let config = ServerConfig {
            workers: 1,
            max_connections: 1,
            ..ServerConfig::default()
        };
        let server = Ledgerd::start(shared, config).unwrap();
        // Occupy the single slot with a live session.
        let mut first = RemoteLedger::connect(server.local_addr()).unwrap();
        // The next connection must be refused, not queued.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        match Response::from_wire(&body).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Busy),
            other => panic!("expected refusal, got {other:?}"),
        }
        // The occupied session still works.
        first.sync().unwrap();
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_finishes_inflight_appends() {
        let (server, alice) = start(
            4,
            Some(BatchConfig { max_batch: 32, max_delay: Duration::from_millis(25) }),
        );
        let addr = server.local_addr();
        let results = std::thread::scope(|scope| {
            let appender = scope.spawn(move || {
                let mut remote = RemoteLedger::connect(addr).unwrap();
                (0..16u64)
                    .map(|i| {
                        remote.append(TxRequest::signed(
                            &alice,
                            format!("drain-{i}").into_bytes(),
                            vec![],
                            i,
                        ))
                    })
                    .collect::<Vec<_>>()
            });
            // Let some appends start, then pull the plug.
            std::thread::sleep(Duration::from_millis(40));
            server.shutdown();
            appender.join().unwrap()
        });
        // Every response was either a durable ack or a typed
        // shutdown/transport error — never a hang, never an unacked
        // success.
        let acked = results.iter().filter(|r| r.is_ok()).count();
        assert!(acked >= 1, "at least the first batch should have landed");
        for r in results.iter().filter(|r| r.is_err()) {
            match r.as_ref().unwrap_err() {
                crate::remote::RemoteError::Server(f) => {
                    assert_eq!(f.code, ErrorCode::ShuttingDown, "unexpected server error: {f}")
                }
                crate::remote::RemoteError::Frame(_) => {} // connection torn down mid-drain
                other => panic!("unexpected failure kind: {other}"),
            }
        }
    }

    mod checkpoints {
        use super::*;
        use crate::remote::RemoteLedger;
        use crate::testutil::registry;
        use ledgerdb_core::recovery::{open_durable, open_durable_with, CHECKPOINT_DIR};
        use ledgerdb_core::{LedgerConfig, SharedLedger};
        use ledgerdb_storage::checkpoint::{CheckpointStore, CkptIo, CrashPoint};
        use ledgerdb_storage::FsyncPolicy;
        use ledgerdb_telemetry::parse_value;
        use ledgerdb_timesvc::clock::SimClock;
        use std::path::PathBuf;

        fn temp_dir(tag: &str) -> PathBuf {
            let dir =
                std::env::temp_dir().join(format!("ledgerd-ckpt-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            dir
        }

        fn ledger_config() -> LedgerConfig {
            LedgerConfig { block_size: 4, fam_delta: 15, name: "server-ckpt".into(), state_backend: Default::default() }
        }

        /// A durable shared ledger with a checkpoint policy, plus its
        /// telemetry registry.
        fn durable_shared(
            dir: &PathBuf,
            io: Arc<CkptIo>,
            every_n_seals: u64,
        ) -> (SharedLedger, ledgerdb_crypto::keys::KeyPair, Arc<Registry>) {
            let (members, alice) = registry();
            let telemetry = Arc::new(Registry::new());
            let (mut ledger, _) = open_durable_with(
                ledger_config(),
                members,
                dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
                &telemetry,
            )
            .unwrap();
            ledger.bind_metrics(&telemetry);
            let store = Arc::new(CheckpointStore::open(&dir.join(CHECKPOINT_DIR)).unwrap());
            ledger.enable_checkpoints(store, io, every_n_seals);
            (SharedLedger::new(ledger), alice, telemetry)
        }

        #[test]
        fn graceful_drain_commits_a_final_checkpoint() {
            let dir = temp_dir("drain");
            // Cadence high enough that only the drain checkpoints.
            let (shared, alice, telemetry) =
                durable_shared(&dir, Arc::new(CkptIo::new()), 1000);
            let config = ServerConfig { registry: telemetry.clone(), ..ServerConfig::default() };
            let server = Ledgerd::start(shared, config).unwrap();
            let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
            for i in 0..8u64 {
                remote
                    .append(TxRequest::signed(&alice, format!("d-{i}").into_bytes(), vec![], i))
                    .unwrap();
            }
            server.shutdown();

            let text = ledgerdb_telemetry::render(&telemetry);
            assert_eq!(parse_value(&text, "ledger_checkpoints_total"), Some(1.0), "{text}");
            assert_eq!(parse_value(&text, "ledger_durability_error"), Some(0.0));

            // The next start loads the checkpoint and replays nothing:
            // the drain flushed the whole sealed prefix and the WAL.
            let (members, _) = registry();
            let (reopened, report) = open_durable(
                ledger_config(),
                members,
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            assert!(report.checkpoint.is_some(), "drain checkpoint found: {report:?}");
            assert_eq!(report.journals_replayed, 0, "nothing left to replay: {report:?}");
            assert_eq!(reopened.journal_count(), 8);
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn drain_checkpoint_failure_sets_the_sticky_durability_gauge() {
            let dir = temp_dir("drain-fail");
            let io = Arc::new(CkptIo::new());
            // The drain's checkpoint is the first checkpoint I/O of the
            // process; its very first write dies.
            io.arm(CrashPoint { op: 1, torn_keep: None });
            let (shared, alice, telemetry) = durable_shared(&dir, io, 1000);
            let config = ServerConfig { registry: telemetry.clone(), ..ServerConfig::default() };
            let server = Ledgerd::start(shared, config).unwrap();
            let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
            for i in 0..4u64 {
                remote
                    .append(TxRequest::signed(&alice, format!("f-{i}").into_bytes(), vec![], i))
                    .unwrap();
            }
            server.shutdown();

            let text = ledgerdb_telemetry::render(&telemetry);
            assert_eq!(parse_value(&text, "ledger_checkpoints_total"), Some(0.0), "{text}");
            assert_eq!(
                parse_value(&text, "ledger_durability_error"),
                Some(1.0),
                "a failed drain checkpoint must trip the sticky gauge:\n{text}"
            );

            // The WAL was never reset, so nothing is lost: recovery
            // replays the full (checkpoint-less) history.
            let (members, _) = registry();
            let (reopened, report) = open_durable(
                ledger_config(),
                members,
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            assert!(report.checkpoint.is_none());
            assert_eq!(reopened.journal_count(), 4);
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn seal_path_checkpoint_failure_surfaces_as_a_durability_error() {
            let dir = temp_dir("seal-fail");
            let io = Arc::new(CkptIo::new());
            io.arm(CrashPoint { op: 1, torn_keep: None });
            // Checkpoint after every seal; unbatched so the append path
            // polls the stash directly.
            let (shared, alice, telemetry) = durable_shared(&dir, io, 1);
            let config = ServerConfig {
                registry: telemetry.clone(),
                batch: None,
                ..ServerConfig::default()
            };
            let server = Ledgerd::start(shared, config).unwrap();
            let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
            for i in 0..3u64 {
                remote
                    .append(TxRequest::signed(&alice, format!("s-{i}").into_bytes(), vec![], i))
                    .unwrap();
            }
            // The fourth append seals block 0; the seal's checkpoint
            // dies on its first write, and the failure comes back as a
            // typed error on this very request — not a silent ack.
            let err = remote
                .append(TxRequest::signed(&alice, b"s-3".to_vec(), vec![], 3))
                .unwrap_err();
            match err {
                crate::remote::RemoteError::Server(frame) => {
                    assert_eq!(frame.code, ErrorCode::Durability, "{frame}");
                    assert!(
                        frame.detail.contains("injected crash"),
                        "the detail names the checkpoint failure: {frame}"
                    );
                }
                other => panic!("expected a typed durability error, got: {other}"),
            }
            // Degraded but serving: the next append lands, and the next
            // seal's checkpoint (the armed op is one-shot) succeeds.
            for i in 4..8u64 {
                remote
                    .append(TxRequest::signed(&alice, format!("s-{i}").into_bytes(), vec![], i))
                    .unwrap();
            }
            let text = ledgerdb_telemetry::render(&telemetry);
            assert_eq!(parse_value(&text, "ledger_durability_error"), Some(0.0), "{text}");
            assert_eq!(parse_value(&text, "ledger_checkpoints_total"), Some(1.0), "{text}");
            server.shutdown();
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
