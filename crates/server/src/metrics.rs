//! Cached telemetry handles for the service layer.
//!
//! One [`ServerMetrics`] per running [`crate::Ledgerd`] and one
//! [`BatchMetrics`] per [`crate::GroupCommitter`], both resolved at
//! startup against the registry in [`crate::ServerConfig::registry`].
//! Request-path recording is a handful of relaxed atomic ops; nothing
//! here takes a lock after startup.

use crate::protocol::Request;
use ledgerdb_telemetry::{Counter, Gauge, Histogram, Registry, Unit};
use std::sync::Arc;

/// Wire-request kinds, in tag order. Indexed by [`kind_index`]. These
/// double as the root stage names in the tracing span tree.
pub const REQUEST_KINDS: [&str; 19] = [
    "hello",
    "append",
    "append_committed",
    "get_tx",
    "list_tx",
    "get_proof",
    "get_clue_proof",
    "verify",
    "get_anchor",
    "get_block_feed",
    "stats",
    "append_batch",
    "get_proof_batch",
    "get_trace",
    "get_topology",
    "get_shard_block_feed",
    "get_epoch_anchors",
    "get_composed_proof",
    "get_state_proof",
];

/// Position of a request's kind in [`REQUEST_KINDS`].
pub fn kind_index(request: &Request) -> usize {
    match request {
        Request::Hello => 0,
        Request::Append(_) => 1,
        Request::AppendCommitted(_) => 2,
        Request::GetTx(_) => 3,
        Request::ListTx(_) => 4,
        Request::GetProof { .. } => 5,
        Request::GetClueProof(_) => 6,
        Request::Verify { .. } => 7,
        Request::GetAnchor => 8,
        Request::GetBlockFeed { .. } => 9,
        Request::Stats => 10,
        Request::AppendBatch(_) => 11,
        Request::GetProofBatch { .. } => 12,
        Request::GetTrace(_) => 13,
        Request::GetTopology => 14,
        Request::GetShardBlockFeed { .. } => 15,
        Request::GetEpochAnchors { .. } => 16,
        Request::GetComposedProof { .. } => 17,
        Request::GetStateProof(_) => 18,
    }
}

/// Count + latency for one request kind
/// (`server_req_<kind>_total` / `server_req_<kind>_seconds`).
#[derive(Debug, Clone)]
pub struct RequestMetrics {
    pub count: Arc<Counter>,
    pub seconds: Arc<Histogram>,
}

#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// `server_connections_active` — sockets currently being served.
    pub connections_active: Arc<Gauge>,
    /// `server_connections_total` — sockets ever accepted.
    pub connections_total: Arc<Counter>,
    /// `server_connections_refused_total` — refused over the cap.
    pub connections_refused: Arc<Counter>,
    /// `ledger_conn_rejected_total` — connections answered with a typed
    /// `Busy` frame (binary) or `503` (HTTP) and then closed. Kept
    /// distinct from `server_connections_refused_total` (which predates
    /// it) so operators can alert on the paper-facing name.
    pub conn_rejected: Arc<Counter>,
    /// `server_bytes_in_total` / `server_bytes_out_total` — whole
    /// frames including the 5-byte header.
    pub bytes_in: Arc<Counter>,
    pub bytes_out: Arc<Counter>,
    /// `server_error_frames_total` — typed error responses written.
    pub error_frames: Arc<Counter>,
    /// `server_admission_verify_total` / `server_admission_proxy_total`
    /// — appends admitted under each [`crate::Admission`] mode.
    pub admission_verify: Arc<Counter>,
    pub admission_proxy: Arc<Counter>,
    /// Per-kind counters/latency, indexed by [`kind_index`].
    pub requests: Vec<RequestMetrics>,
}

impl ServerMetrics {
    pub fn bind(registry: &Registry) -> Self {
        let requests = REQUEST_KINDS
            .iter()
            .map(|kind| RequestMetrics {
                count: registry.counter(&format!("server_req_{kind}_total")),
                seconds: registry.histogram(&format!("server_req_{kind}_seconds"), Unit::Seconds),
            })
            .collect();
        ServerMetrics {
            connections_active: registry.gauge("server_connections_active"),
            connections_total: registry.counter("server_connections_total"),
            connections_refused: registry.counter("server_connections_refused_total"),
            conn_rejected: registry.counter("ledger_conn_rejected_total"),
            bytes_in: registry.counter("server_bytes_in_total"),
            bytes_out: registry.counter("server_bytes_out_total"),
            error_frames: registry.counter("server_error_frames_total"),
            admission_verify: registry.counter("server_admission_verify_total"),
            admission_proxy: registry.counter("server_admission_proxy_total"),
            requests,
        }
    }

    /// Handles for one decoded request.
    pub fn request(&self, request: &Request) -> &RequestMetrics {
        &self.requests[kind_index(request)]
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::bind(Registry::global())
    }
}

/// Event-loop telemetry (one per [`crate::event_server::EventLedgerd`]).
#[derive(Debug, Clone)]
pub struct LoopMetrics {
    /// `server_loop_iterations_total` — epoll wait/process cycles.
    pub iterations: Arc<Counter>,
    /// `server_loop_events` — readiness events delivered per wakeup.
    pub events_per_wake: Arc<Histogram>,
    /// `server_loop_wait_seconds` — time parked in `epoll_wait`.
    pub wait_seconds: Arc<Histogram>,
    /// `server_loop_process_seconds` — time handling one wakeup's
    /// events (readiness latency: how long a ready socket can sit
    /// behind its siblings before the loop touches it).
    pub process_seconds: Arc<Histogram>,
    /// `server_loop_connections` — sockets currently registered with
    /// the poller (both protocols, listeners excluded).
    pub connections: Arc<Gauge>,
    /// `server_http_requests_total` — HTTP requests served.
    pub http_requests: Arc<Counter>,
}

impl LoopMetrics {
    pub fn bind(registry: &Registry) -> Self {
        LoopMetrics {
            iterations: registry.counter("server_loop_iterations_total"),
            events_per_wake: registry.histogram("server_loop_events", Unit::Count),
            wait_seconds: registry.histogram("server_loop_wait_seconds", Unit::Seconds),
            process_seconds: registry.histogram("server_loop_process_seconds", Unit::Seconds),
            connections: registry.gauge("server_loop_connections"),
            http_requests: registry.counter("server_http_requests_total"),
        }
    }
}

/// Group-commit telemetry (one per committer thread).
#[derive(Debug, Clone)]
pub struct BatchMetrics {
    /// `batch_queue_depth` — jobs submitted but not yet committed.
    pub queue_depth: Arc<Gauge>,
    /// `batch_queue_wait_seconds` — submit-to-commit-start wait.
    pub queue_wait_seconds: Arc<Histogram>,
    /// `batch_size` — jobs per commit window.
    pub batch_size: Arc<Histogram>,
    /// `batch_windows_total` — commit windows executed.
    pub windows: Arc<Counter>,
    /// `batch_commit_seconds` — whole-window commit latency (fsyncs,
    /// sealing, replies).
    pub commit_seconds: Arc<Histogram>,
}

impl BatchMetrics {
    pub fn bind(registry: &Registry) -> Self {
        BatchMetrics {
            queue_depth: registry.gauge("batch_queue_depth"),
            queue_wait_seconds: registry.histogram("batch_queue_wait_seconds", Unit::Seconds),
            batch_size: registry.histogram("batch_size", Unit::Count),
            windows: registry.counter("batch_windows_total"),
            commit_seconds: registry.histogram("batch_commit_seconds", Unit::Seconds),
        }
    }
}

impl Default for BatchMetrics {
    fn default() -> Self {
        Self::bind(Registry::global())
    }
}
