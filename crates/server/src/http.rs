//! The operator-facing HTTP/1.1 surface.
//!
//! A deliberately small server-side subset — `GET` only, no bodies, no
//! chunked encoding, no TLS — because its whole job is six endpoints:
//!
//! | endpoint        | payload                                          |
//! |-----------------|--------------------------------------------------|
//! | `/healthz`      | `ok` (200 while serving, 503 while draining)     |
//! | `/status`       | JSON: ledger head, checkpoint state, drain       |
//! | `/metrics`      | Prometheus text exposition from the registry     |
//! | `/proof/<jsn>`  | JSON existence proof against the current anchor  |
//! | `/trace/<id>`   | JSON span tree from the flight recorder          |
//! | `/trace/slow`   | JSON list of pinned slow/error trace roots       |
//!
//! The parser is a pure function over a byte buffer — no socket, no
//! blocking — so the epoll loop ([`crate::event_server`]) can feed it
//! incrementally: bytes accumulate until a full header is buffered (CRLF
//! CRLF), then the request is dispatched and the consumed prefix
//! dropped. Headers are capped at [`MAX_HEADER_BYTES`]; a peer that
//! trickles an endless header gets `431` and a hangup, exactly like an
//! oversized binary frame.

use crate::service::RequestService;
use ledgerdb_crypto::wire::Wire;
use std::fmt::Write as _;

/// Header cap: request line + headers must fit in 8 KiB, a bound hit
/// only by hostile or broken clients.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// One step of incremental request parsing over the accumulated buffer.
#[derive(Debug)]
pub enum HttpParse {
    /// No complete header yet — keep reading (the buffer is under the
    /// cap; over it the parser returns `Reject`).
    Incomplete,
    /// A full request: `consumed` bytes of buffer hold it entirely.
    Request { method: String, path: String, keep_alive: bool, consumed: usize },
    /// Unsalvageable input; write the response bytes and hang up.
    Reject(Vec<u8>),
}

/// Try to parse one request from the front of `buf`.
///
/// HTTP/1.1 defaults to keep-alive; `Connection: close` (or HTTP/1.0
/// without `Connection: keep-alive`) turns it off. Request bodies are
/// not supported — a `Content-Length`/`Transfer-Encoding` header is
/// rejected outright rather than desynchronizing the stream.
pub fn parse_request(buf: &[u8]) -> HttpParse {
    let Some(header_end) = find_crlf_crlf(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return HttpParse::Reject(response(
                431,
                "Request Header Fields Too Large",
                "text/plain; charset=utf-8",
                b"header exceeds 8KiB\n",
                false,
            ));
        }
        return HttpParse::Incomplete;
    };
    let header = &buf[..header_end];
    let Ok(text) = std::str::from_utf8(header) else {
        return HttpParse::Reject(bad_request("header is not utf-8"));
    };
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return HttpParse::Reject(bad_request("malformed request line"));
    };
    if parts.next().is_some() {
        return HttpParse::Reject(bad_request("malformed request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return HttpParse::Reject(response(
                505,
                "HTTP Version Not Supported",
                "text/plain; charset=utf-8",
                b"only HTTP/1.0 and 1.1\n",
                false,
            ))
        }
    };
    let mut keep_alive = http11;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("content-length")
            || name.eq_ignore_ascii_case("transfer-encoding")
        {
            // A body would desynchronize the next request's parse; this
            // surface is GET-only by design.
            return HttpParse::Reject(bad_request("request bodies are not supported"));
        }
    }
    HttpParse::Request {
        method: method.to_string(),
        path: path.to_string(),
        keep_alive,
        consumed: header_end + 4,
    }
}

fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    // Bound the scan to the cap plus the terminator's own length.
    let scan = &buf[..buf.len().min(MAX_HEADER_BYTES + 4)];
    scan.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serve one parsed request. Pure computation — the caller owns writing
/// the returned bytes back. Handlers that read ledger state may block
/// briefly on the ledger lock, which is why the event loop dispatches
/// these to its worker pool instead of answering inline.
pub fn handle(service: &RequestService, method: &str, path: &str, keep_alive: bool) -> Vec<u8> {
    if method != "GET" && method != "HEAD" {
        return response(
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            b"only GET is supported\n",
            keep_alive,
        );
    }
    let (status, reason, content_type, body) = route(service, path);
    let mut bytes = response(status, reason, content_type, body.as_bytes(), keep_alive);
    if method == "HEAD" {
        // Identical headers (incl. Content-Length), no body.
        let header_len = find_crlf_crlf(&bytes).map(|i| i + 4).unwrap_or(bytes.len());
        bytes.truncate(header_len);
    }
    bytes
}

fn route(service: &RequestService, path: &str) -> (u16, &'static str, &'static str, String) {
    // Strip a query string; none of the endpoints take parameters.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/healthz" => {
            if service.draining() {
                (503, "Service Unavailable", "text/plain; charset=utf-8", "draining\n".into())
            } else {
                (200, "OK", "text/plain; charset=utf-8", "ok\n".into())
            }
        }
        "/status" => (200, "OK", "application/json", status_json(service)),
        "/metrics" => (
            200,
            "OK",
            ledgerdb_telemetry::EXPOSITION_CONTENT_TYPE,
            ledgerdb_telemetry::render(service.registry()),
        ),
        "/trace/slow" => (200, "OK", "application/json", slow_traces_json()),
        _ => match path.strip_prefix("/proof/") {
            Some(rest) => proof_json(service, rest),
            None => match path.strip_prefix("/trace/") {
                Some(rest) => trace_json(rest),
                None => {
                    (404, "Not Found", "text/plain; charset=utf-8", "no such endpoint\n".into())
                }
            },
        },
    }
}

/// `/status`: the operator's one-glance view — ledger head, checkpoint
/// watermark, drain state. Values are claims, not proofs (like `Stats`
/// on the binary protocol): use the verifying client for trust.
fn status_json(service: &RequestService) -> String {
    let shared = &service.shared;
    let mut out = String::with_capacity(256);
    out.push('{');
    let _ = write!(
        out,
        "\"journal_count\":{},\"block_count\":{},\"journal_root\":\"{}\"",
        shared.journal_count(),
        shared.block_count(),
        shared.journal_root().to_hex(),
    );
    match shared.checkpoint_watermark() {
        Some((journals, blocks)) => {
            let snapshot_id = shared
                .checkpoint_snapshot_id()
                .map(|id| format!("\"{}\"", id.to_hex()))
                .unwrap_or_else(|| "null".into());
            let seals_since = shared
                .checkpoint_seals_since()
                .map(|n| n.to_string())
                .unwrap_or_else(|| "null".into());
            let _ = write!(
                out,
                ",\"checkpoint\":{{\"journal_count\":{journals},\"block_count\":{blocks},\
                 \"snapshot_id\":{snapshot_id},\"seals_since\":{seals_since}}}"
            );
        }
        None => out.push_str(",\"checkpoint\":null"),
    }
    let (snapshot_hits, snapshot_fallbacks) = shared.snapshot_read_counts();
    let _ = write!(
        out,
        ",\"snapshot_hits\":{snapshot_hits},\"snapshot_fallbacks\":{snapshot_fallbacks}"
    );
    let _ = write!(
        out,
        ",\"checkpoints_enabled\":{},\"draining\":{}}}",
        shared.checkpoints_enabled(),
        service.draining(),
    );
    out
}

/// `/trace/<id>`: the flight recorder's retained span tree for one
/// trace, id in the 16-hex form the slow-op log and `/trace/slow`
/// print. Spans carry `parent` links (`0` = root) so the tree is
/// reconstructible client-side.
fn trace_json(rest: &str) -> (u16, &'static str, &'static str, String) {
    let Ok(trace) = u64::from_str_radix(rest, 16) else {
        return (
            400,
            "Bad Request",
            "text/plain; charset=utf-8",
            "trace path takes a hex trace id\n".into(),
        );
    };
    let events = ledgerdb_telemetry::recorder::events_for(trace);
    if events.is_empty() {
        return (
            404,
            "Not Found",
            "application/json",
            format!("{{\"trace\":\"{trace:016x}\",\"spans\":[]}}"),
        );
    }
    let mut out = String::with_capacity(events.len() * 96 + 64);
    let _ = write!(out, "{{\"trace\":\"{trace:016x}\",\"spans\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"span\":{},\"parent\":{},\"name\":{},\"start_ns\":{},\"dur_ns\":{}}}",
            e.span,
            e.parent,
            json_string(ledgerdb_telemetry::recorder::name_of(e.name_id)),
            e.start_ns,
            e.end_ns.saturating_sub(e.start_ns),
        );
    }
    out.push_str("]}");
    (200, "OK", "application/json", out)
}

/// `/trace/slow`: pinned slow / error-terminated traces, newest first —
/// each entry's `trace` id feeds straight into `/trace/<id>`.
fn slow_traces_json() -> String {
    let pinned = ledgerdb_telemetry::recorder::slow_traces();
    let mut out = String::with_capacity(pinned.len() * 96 + 32);
    out.push_str("{\"slow\":[");
    for (i, p) in pinned.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"trace\":\"{:016x}\",\"root\":{},\"dur_ns\":{},\"error\":{},\"spans\":{}}}",
            p.trace,
            json_string(ledgerdb_telemetry::recorder::name_of(p.root_name_id)),
            p.dur_ns,
            p.error,
            p.events.len(),
        );
    }
    out.push_str("]}");
    out
}

/// `/proof/<jsn>`: an existence proof against the server's **current**
/// anchor, hex-encoded wire bytes. Convenience for operators and
/// curl-based smoke checks; a distrusting client uses the binary
/// protocol with its *own* anchor.
fn proof_json(service: &RequestService, rest: &str) -> (u16, &'static str, &'static str, String) {
    let Ok(jsn) = rest.parse::<u64>() else {
        return (
            400,
            "Bad Request",
            "text/plain; charset=utf-8",
            "proof path takes a decimal jsn\n".into(),
        );
    };
    let anchor = service.shared.anchor();
    match service.shared.prove_existence(jsn, &anchor) {
        Ok((tx_hash, proof)) => {
            let proof_hex = hex(&proof.to_wire());
            let anchor_hex = hex(&anchor.to_wire());
            (
                200,
                "OK",
                "application/json",
                format!(
                    "{{\"jsn\":{jsn},\"tx_hash\":\"{}\",\"proof\":\"{proof_hex}\",\"anchor\":\"{anchor_hex}\"}}",
                    tx_hash.to_hex(),
                ),
            )
        }
        Err(e) => (
            404,
            "Not Found",
            "application/json",
            format!("{{\"jsn\":{jsn},\"error\":{}}}", json_string(&e.to_string())),
        ),
    }
}

/// The `503` written to an over-cap HTTP connection before close — the
/// operator-plane twin of the binary `Busy` frame.
pub fn busy_response() -> Vec<u8> {
    let mut bytes = response(
        503,
        "Service Unavailable",
        "text/plain; charset=utf-8",
        b"connection limit reached; retry with backoff\n",
        false,
    );
    // Nudge well-behaved clients toward the same backoff discipline as
    // the binary protocol's Busy frame.
    let insert = bytes.windows(4).position(|w| w == b"\r\n\r\n").unwrap_or(0);
    bytes.splice(insert..insert, b"\r\nRetry-After: 1".iter().copied());
    bytes
}

/// A `400` that also hangs up — every caller treats the input as
/// unsalvageable, so keep-alive is off unconditionally.
fn bad_request(detail: &str) -> Vec<u8> {
    response(
        400,
        "Bad Request",
        "text/plain; charset=utf-8",
        format!("{detail}\n").as_bytes(),
        false,
    )
}

/// Serialize one HTTP/1.1 response.
pub fn response(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::testutil::shared;
    use ledgerdb_core::TxRequest;
    use ledgerdb_telemetry::Registry;
    use std::sync::Arc;

    fn service() -> (RequestService, ledgerdb_crypto::keys::KeyPair) {
        let (shared, alice) = shared(4);
        let config = ServerConfig {
            registry: Arc::new(Registry::new()),
            batch: None,
            ..ServerConfig::default()
        };
        (RequestService::start(shared, &config), alice)
    }

    fn parse_ok(buf: &[u8]) -> (String, String, bool, usize) {
        match parse_request(buf) {
            HttpParse::Request { method, path, keep_alive, consumed } => {
                (method, path, keep_alive, consumed)
            }
            other => panic!("expected a parsed request, got {other:?}"),
        }
    }

    #[test]
    fn parses_incrementally_like_the_event_loop_feeds_it() {
        let full = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        for cut in 0..full.len() {
            match parse_request(&full[..cut]) {
                HttpParse::Incomplete => {}
                other => panic!("prefix of {cut} bytes parsed to {other:?}"),
            }
        }
        let (method, path, keep_alive, consumed) = parse_ok(full);
        assert_eq!((method.as_str(), path.as_str()), ("GET", "/healthz"));
        assert!(keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(consumed, full.len());
    }

    #[test]
    fn connection_and_version_semantics() {
        let (.., keep_alive, _) =
            parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!keep_alive);
        let (.., keep_alive, _) = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!keep_alive, "HTTP/1.0 defaults to close");
        let (.., keep_alive, _) =
            parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(keep_alive);
        assert!(matches!(parse_request(b"GET / HTTP/2\r\n\r\n"), HttpParse::Reject(b) if
            String::from_utf8_lossy(&b).starts_with("HTTP/1.1 505")));
    }

    #[test]
    fn hostile_headers_are_rejected_typed() {
        // Endless header trickle: over the cap without a terminator.
        let mut creep = b"GET / HTTP/1.1\r\n".to_vec();
        creep.extend(std::iter::repeat(b'a').take(MAX_HEADER_BYTES + 1));
        assert!(matches!(parse_request(&creep), HttpParse::Reject(b) if
            String::from_utf8_lossy(&b).starts_with("HTTP/1.1 431")));
        // Garbage request line.
        assert!(matches!(parse_request(b"\r\n\r\n"), HttpParse::Reject(_)));
        // A request body would desync the keep-alive stream.
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODY"),
            HttpParse::Reject(_)
        ));
    }

    #[test]
    fn endpoints_answer() {
        let (service, alice) = service();
        for i in 0..6u64 {
            let Ok(_) = service
                .shared
                .append(TxRequest::signed(&alice, format!("h-{i}").into_bytes(), vec![], i))
            else {
                panic!("fixture append failed")
            };
        }
        let text = |bytes: Vec<u8>| String::from_utf8(bytes).unwrap();

        let health = text(handle(&service, "GET", "/healthz", true));
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");
        assert!(health.contains("Connection: keep-alive"), "{health}");

        let status = text(handle(&service, "GET", "/status", true));
        assert!(status.contains("\"journal_count\":6"), "{status}");
        assert!(status.contains("\"checkpoint\":null"), "{status}");
        assert!(status.contains("\"draining\":false"), "{status}");
        assert!(status.contains("Content-Type: application/json"), "{status}");

        let metrics = text(handle(&service, "GET", "/metrics", true));
        assert!(metrics.contains("# TYPE ledger_conn_rejected_total counter"), "{metrics}");
        assert!(metrics.contains(ledgerdb_telemetry::EXPOSITION_CONTENT_TYPE), "{metrics}");

        // A sealed jsn proves; block size 4 → jsns 0..4 are sealed.
        let proof = text(handle(&service, "GET", "/proof/1", true));
        assert!(proof.starts_with("HTTP/1.1 200"), "{proof}");
        assert!(proof.contains("\"tx_hash\":\""), "{proof}");
        let missing = text(handle(&service, "GET", "/proof/999", true));
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let garbage = text(handle(&service, "GET", "/proof/xyz", true));
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");

        let lost = text(handle(&service, "GET", "/nope", true));
        assert!(lost.starts_with("HTTP/1.1 404"), "{lost}");
        let put = text(handle(&service, "PUT", "/healthz", true));
        assert!(put.starts_with("HTTP/1.1 405"), "{put}");

        // HEAD: headers only, same Content-Length.
        let head = text(handle(&service, "HEAD", "/healthz", true));
        assert!(head.contains("Content-Length: 3"), "{head}");
        assert!(head.ends_with("\r\n\r\n"), "{head}");
    }

    #[test]
    fn drain_flips_healthz_and_status() {
        let (service, _) = service();
        let first = service.begin_drain();
        let health = String::from_utf8(handle(&service, "GET", "/healthz", true)).unwrap();
        assert!(health.starts_with("HTTP/1.1 503"), "{health}");
        let status = String::from_utf8(handle(&service, "GET", "/status", true)).unwrap();
        assert!(status.contains("\"draining\":true"), "{status}");
        service.finish_drain(first);
    }

    #[test]
    fn busy_response_is_a_close_with_retry_after() {
        let busy = String::from_utf8(busy_response()).unwrap();
        assert!(busy.starts_with("HTTP/1.1 503"), "{busy}");
        assert!(busy.contains("Retry-After: 1"), "{busy}");
        assert!(busy.contains("Connection: close"), "{busy}");
    }
}
