//! The `ledgerd` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `version:u8 · len:u32(be) · body[len]`, where the body
//! is one [`Wire`]-encoded [`Request`] or [`Response`] (the message tag
//! is the body's first byte). Hostile input is handled with *typed*
//! failures at every layer:
//!
//! * a frame whose length prefix exceeds the negotiated bound is
//!   [`FrameError::Oversized`] — rejected before any allocation;
//! * an unknown protocol version byte is [`FrameError::BadVersion`];
//! * a body that fails to decode (truncated, trailing bytes, bad tag,
//!   off-curve key) surfaces as a [`WireError`], which the server maps
//!   to an [`ErrorFrame`] response — never a panic, never a partial
//!   read misinterpreted as data.
//!
//! The protocol is deliberately request/response over a persistent
//! connection: no pipelining, no server push. A distrusting client
//! ([`crate::remote::RemoteLedger`]) treats every response as claims to
//! re-verify, not facts.

use ledgerdb_accumulator::fam::{FamProof, TrustedAnchor};
use ledgerdb_clue::cm_tree::ClueProof;
use ledgerdb_core::{
    Block, ComposedProof, EpochAnchor, Journal, LedgerError, Receipt, StateProof, TxRequest,
};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::keys::PublicKey;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};
use std::fmt;
use std::io::{self, Read, Write};

/// The base protocol version: `version · len:u32 · body`. Responses and
/// untraced requests are always version-1 frames, so a version-1-only
/// peer interoperates with this build unchanged.
pub const PROTOCOL_VERSION: u8 = 1;

/// The traced protocol version. A version-2 frame carries a small
/// envelope before the message body: `flags:u8`, then a big-endian
/// `trace_id:u64` when `flags & 1` is set. Servers accept both
/// versions; clients that attach trace ids emit version 2 for requests
/// and still read version-1 responses.
pub const TRACED_PROTOCOL_VERSION: u8 = 2;

/// Envelope flag bit: a trace id follows.
const ENVELOPE_HAS_TRACE: u8 = 1;

/// Default ceiling on a frame body (requests and responses). Payloads
/// larger than this must be chunked by the application.
pub const DEFAULT_MAX_FRAME: u32 = 4 << 20;

/// Framing-layer failures (before any message decoding).
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// An I/O failure (includes read/write timeouts).
    Io(io::Error),
    /// The version byte was neither [`PROTOCOL_VERSION`] nor
    /// [`TRACED_PROTOCOL_VERSION`].
    BadVersion(u8),
    /// A version-2 frame whose trace envelope is truncated or carries
    /// unknown flag bits.
    BadEnvelope,
    /// The length prefix exceeded the frame bound.
    Oversized { len: u32, max: u32 },
    /// An outgoing body too large for the protocol's `u32` length
    /// prefix. Caught before any byte is written: silently truncating
    /// the prefix would desync the stream for every later frame.
    FrameTooLarge { len: u64 },
    /// A batched response whose item count differs from the request's
    /// item count. The framing itself is intact — this is a *lying or
    /// buggy server*: silently zipping the short (or over-long) reply
    /// against the local request list would truncate or misalign acks,
    /// so the client refuses the whole batch with a typed error instead.
    BatchLengthMismatch { sent: u64, got: u64 },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "frame i/o failure: {e}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadEnvelope => write!(f, "malformed trace envelope in version-2 frame"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            FrameError::FrameTooLarge { len } => {
                write!(f, "body of {len} bytes exceeds the u32 frame length prefix")
            }
            FrameError::BatchLengthMismatch { sent, got } => {
                write!(f, "batched {sent} requests, server answered {got} results")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// True when the failure is a read timeout (the connection is idle,
    /// not broken) — the server polls its shutdown flag on these.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Validate that a body fits the protocol's `u32` length prefix.
/// Factored out so the overflow guard is testable without materializing
/// a >4 GiB body.
pub(crate) fn check_frame_len(body_len: usize) -> Result<u32, FrameError> {
    u32::try_from(body_len).map_err(|_| FrameError::FrameTooLarge { len: body_len as u64 })
}

/// Write one frame: version byte, big-endian length, body.
///
/// A body over `u32::MAX` bytes is [`FrameError::FrameTooLarge`], and
/// nothing is written — a truncated length prefix would desync every
/// subsequent frame on the stream.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    let len = check_frame_len(body.len())?;
    let mut frame = Vec::with_capacity(5 + body.len());
    frame.push(PROTOCOL_VERSION);
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Write one traced (version-2) frame: the body is prefixed with the
/// trace envelope (`flags=1`, big-endian trace id) and the length
/// prefix covers envelope + body.
pub fn write_traced_frame(w: &mut impl Write, trace_id: u64, body: &[u8]) -> Result<(), FrameError> {
    let len = check_frame_len(body.len().saturating_add(9))?;
    let mut frame = Vec::with_capacity(5 + len as usize);
    frame.push(TRACED_PROTOCOL_VERSION);
    frame.extend_from_slice(&len.to_be_bytes());
    frame.push(ENVELOPE_HAS_TRACE);
    frame.extend_from_slice(&trace_id.to_be_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Split a version-2 frame body into its trace id (if flagged) and the
/// message body. Unknown flag bits or a truncated envelope are
/// [`FrameError::BadEnvelope`] — a frame this build cannot interpret
/// must be rejected, not half-read.
pub fn split_trace_envelope(body: &[u8]) -> Result<(Option<u64>, &[u8]), FrameError> {
    let (&flags, rest) = body.split_first().ok_or(FrameError::BadEnvelope)?;
    if flags & !ENVELOPE_HAS_TRACE != 0 {
        return Err(FrameError::BadEnvelope);
    }
    if flags & ENVELOPE_HAS_TRACE == 0 {
        return Ok((None, rest));
    }
    if rest.len() < 8 {
        return Err(FrameError::BadEnvelope);
    }
    let (id_bytes, rest) = rest.split_at(8);
    let id = u64::from_be_bytes(id_bytes.try_into().expect("split_at(8)"));
    Ok((Some(id), rest))
}

/// Largest single allocation/read step while receiving a frame body.
/// The length prefix is attacker-controlled: growing the buffer only as
/// bytes actually arrive means a hostile header can't force a max-frame
/// allocation up front.
const READ_CHUNK: usize = 64 * 1024;

/// Read one frame body, enforcing the version byte and the `max` bound.
/// A version-2 frame's trace id is parsed, validated, and discarded —
/// use [`read_frame_traced`] to keep it.
///
/// A clean EOF before the first byte is [`FrameError::Closed`]; an EOF
/// mid-frame is an I/O error (the peer died mid-sentence).
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Vec<u8>, FrameError> {
    read_frame_traced(r, max).map(|(_, body)| body)
}

/// As [`read_frame`], returning the version-2 trace id alongside the
/// message body (`None` for version-1 frames and unflagged envelopes).
pub fn read_frame_traced(r: &mut impl Read, max: u32) -> Result<(Option<u64>, Vec<u8>), FrameError> {
    let mut version = [0u8; 1];
    loop {
        match r.read(&mut version) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if version[0] != PROTOCOL_VERSION && version[0] != TRACED_PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(version[0]));
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes);
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let len = len as usize;
    let mut body = Vec::with_capacity(len.min(READ_CHUNK));
    while body.len() < len {
        let take = (len - body.len()).min(READ_CHUNK);
        let start = body.len();
        body.resize(start + take, 0);
        r.read_exact(&mut body[start..])?;
    }
    if version[0] == TRACED_PROTOCOL_VERSION {
        let (trace, message) = split_trace_envelope(&body)?;
        return Ok((trace, message.to_vec()));
    }
    Ok((None, body))
}

/// A client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Handshake: ask for the server's identity and configuration.
    Hello,
    /// Append a signed transaction; acked once durable (group commit).
    Append(TxRequest),
    /// Append, seal, and return the LSP receipt.
    AppendCommitted(TxRequest),
    /// Fetch a journal record and its payload.
    GetTx(u64),
    /// jsns recorded under a clue.
    ListTx(String),
    /// Existence proof for a jsn relative to the *caller's* anchor.
    GetProof { jsn: u64, anchor: TrustedAnchor },
    /// Clue-oriented lineage proof.
    GetClueProof(String),
    /// Server-side existence verification of a supplied proof.
    Verify { jsn: u64, tx_hash: Digest, proof: FamProof, anchor: TrustedAnchor },
    /// The server's current trusted-anchor snapshot (convenience; a
    /// distrusting client derives its own from the block feed).
    GetAnchor,
    /// Sealed blocks from `from_height`, at most `max_blocks`.
    GetBlockFeed { from_height: u64, max_blocks: u64 },
    /// The server's telemetry snapshot as Prometheus-style text
    /// exposition (counters, gauges, latency histograms).
    Stats,
    /// Append a whole batch of signed transactions in one frame. The
    /// server digests and admission-checks the batch across its compute
    /// pool *off* the ledger lock, then commits it behind one durability
    /// barrier. Items are acked (or rejected) positionally.
    AppendBatch(Vec<TxRequest>),
    /// Existence proofs for many jsns against one caller anchor,
    /// answered positionally. Built from a single immutable read
    /// snapshot, fanned out across the compute pool.
    GetProofBatch { jsns: Vec<u64>, anchor: TrustedAnchor },
    /// The recorded span events for a trace id, from the server's
    /// flight recorder (ring buffers + pinned slow/error captures).
    /// An unknown or aged-out id answers with an empty span list.
    GetTrace(u64),
    /// Shard topology: K, the epoch count, and the top-level anchor
    /// root. On an unsharded server this answers K=1 — the probe is how
    /// a shard-aware client discovers it can use the plain paths.
    GetTopology,
    /// Sealed blocks of one shard (the shard-aware distrusting sync;
    /// shard 0's feed is identical to `GetBlockFeed` on K=1).
    GetShardBlockFeed { shard: u32, from_height: u64, max_blocks: u64 },
    /// Epoch anchor records from `from_epoch`, so a client can mirror
    /// the top-level anchor tree from its own verified roots. Cuts a
    /// fresh epoch first if any shard sealed since the last cut.
    GetEpochAnchors { from_epoch: u64 },
    /// Composed shard + anchor existence proof for a *global* jsn,
    /// against the caller's anchor for the jsn's shard.
    GetComposedProof { jsn: u64, anchor: TrustedAnchor },
    /// State-commitment proof for a clue: inclusion when the clue has a
    /// committed latest-payload digest, verifiable absence otherwise.
    /// The client checks it against its *own* synced state root — the
    /// server's answer is a claim, not a fact.
    GetStateProof(String),
}

impl Wire for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Hello => w.put_u8(0),
            Request::Append(req) => {
                w.put_u8(1);
                req.encode(w);
            }
            Request::AppendCommitted(req) => {
                w.put_u8(2);
                req.encode(w);
            }
            Request::GetTx(jsn) => {
                w.put_u8(3);
                w.put_u64(*jsn);
            }
            Request::ListTx(clue) => {
                w.put_u8(4);
                clue.encode(w);
            }
            Request::GetProof { jsn, anchor } => {
                w.put_u8(5);
                w.put_u64(*jsn);
                anchor.encode(w);
            }
            Request::GetClueProof(clue) => {
                w.put_u8(6);
                clue.encode(w);
            }
            Request::Verify { jsn, tx_hash, proof, anchor } => {
                w.put_u8(7);
                w.put_u64(*jsn);
                tx_hash.encode(w);
                proof.encode(w);
                anchor.encode(w);
            }
            Request::GetAnchor => w.put_u8(8),
            Request::GetBlockFeed { from_height, max_blocks } => {
                w.put_u8(9);
                w.put_u64(*from_height);
                w.put_u64(*max_blocks);
            }
            Request::Stats => w.put_u8(10),
            Request::AppendBatch(reqs) => {
                w.put_u8(11);
                reqs.encode(w);
            }
            Request::GetProofBatch { jsns, anchor } => {
                w.put_u8(12);
                jsns.encode(w);
                anchor.encode(w);
            }
            Request::GetTrace(id) => {
                w.put_u8(13);
                w.put_u64(*id);
            }
            Request::GetTopology => w.put_u8(14),
            Request::GetShardBlockFeed { shard, from_height, max_blocks } => {
                w.put_u8(15);
                w.put_u32(*shard);
                w.put_u64(*from_height);
                w.put_u64(*max_blocks);
            }
            Request::GetEpochAnchors { from_epoch } => {
                w.put_u8(16);
                w.put_u64(*from_epoch);
            }
            Request::GetComposedProof { jsn, anchor } => {
                w.put_u8(17);
                w.put_u64(*jsn);
                anchor.encode(w);
            }
            Request::GetStateProof(clue) => {
                w.put_u8(18);
                clue.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Request::Hello),
            1 => Ok(Request::Append(TxRequest::decode(r)?)),
            2 => Ok(Request::AppendCommitted(TxRequest::decode(r)?)),
            3 => Ok(Request::GetTx(r.get_u64()?)),
            4 => Ok(Request::ListTx(String::decode(r)?)),
            5 => Ok(Request::GetProof { jsn: r.get_u64()?, anchor: TrustedAnchor::decode(r)? }),
            6 => Ok(Request::GetClueProof(String::decode(r)?)),
            7 => Ok(Request::Verify {
                jsn: r.get_u64()?,
                tx_hash: Digest::decode(r)?,
                proof: FamProof::decode(r)?,
                anchor: TrustedAnchor::decode(r)?,
            }),
            8 => Ok(Request::GetAnchor),
            9 => Ok(Request::GetBlockFeed {
                from_height: r.get_u64()?,
                max_blocks: r.get_u64()?,
            }),
            10 => Ok(Request::Stats),
            11 => Ok(Request::AppendBatch(Vec::decode(r)?)),
            12 => Ok(Request::GetProofBatch {
                jsns: Vec::decode(r)?,
                anchor: TrustedAnchor::decode(r)?,
            }),
            13 => Ok(Request::GetTrace(r.get_u64()?)),
            14 => Ok(Request::GetTopology),
            15 => Ok(Request::GetShardBlockFeed {
                shard: r.get_u32()?,
                from_height: r.get_u64()?,
                max_blocks: r.get_u64()?,
            }),
            16 => Ok(Request::GetEpochAnchors { from_epoch: r.get_u64()? }),
            17 => Ok(Request::GetComposedProof {
                jsn: r.get_u64()?,
                anchor: TrustedAnchor::decode(r)?,
            }),
            18 => Ok(Request::GetStateProof(String::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// What the server advertises at handshake.
#[derive(Clone, Debug)]
pub struct ServerInfo {
    pub protocol_version: u8,
    pub ledger_id: Digest,
    pub lsp_pk: PublicKey,
    pub fam_delta: u32,
    pub journal_count: u64,
    pub block_count: u64,
}

impl Wire for ServerInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.protocol_version);
        self.ledger_id.encode(w);
        self.lsp_pk.encode(w);
        w.put_u32(self.fam_delta);
        w.put_u64(self.journal_count);
        w.put_u64(self.block_count);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ServerInfo {
            protocol_version: r.get_u8()?,
            ledger_id: Digest::decode(r)?,
            lsp_pk: PublicKey::decode(r)?,
            fam_delta: r.get_u32()?,
            journal_count: r.get_u64()?,
            block_count: r.get_u64()?,
        })
    }
}

/// Typed failure categories carried by [`ErrorFrame`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request body failed to decode (truncated, trailing bytes…).
    BadFrame,
    /// An unknown message tag byte.
    BadTag,
    /// The request decoded but the ledger rejected it (bad signature,
    /// unknown member, invalid argument).
    Rejected,
    /// The referenced entity does not exist (jsn, clue, block) or is no
    /// longer retrievable (purged, occulted).
    NotFound,
    /// The server is at its connection/queue limit.
    Unavailable,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// A durability failure: the append could not be made stable, and
    /// was not acknowledged.
    Durability,
    /// Anything else (a bug, reported loudly).
    Internal,
    /// The frame's length prefix exceeded the server's bound.
    Oversized,
    /// The frame's version byte is not one this server speaks.
    UnsupportedVersion,
    /// The server is over its connection cap *right now*; unlike
    /// [`ErrorCode::Unavailable`] this is an explicit invitation to
    /// retry with backoff — [`crate::remote::RemoteLedger`] treats it as
    /// retryable under its dial backoff instead of surfacing an EOF.
    Busy,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::BadTag => 2,
            ErrorCode::Rejected => 3,
            ErrorCode::NotFound => 4,
            ErrorCode::Unavailable => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Durability => 7,
            ErrorCode::Internal => 8,
            ErrorCode::Oversized => 9,
            ErrorCode::UnsupportedVersion => 10,
            ErrorCode::Busy => 11,
        }
    }

    fn from_tag(t: u8) -> Result<Self, WireError> {
        Ok(match t {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadTag,
            3 => ErrorCode::Rejected,
            4 => ErrorCode::NotFound,
            5 => ErrorCode::Unavailable,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Durability,
            8 => ErrorCode::Internal,
            9 => ErrorCode::Oversized,
            10 => ErrorCode::UnsupportedVersion,
            11 => ErrorCode::Busy,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// A typed error response.
#[derive(Clone, Debug)]
pub struct ErrorFrame {
    pub code: ErrorCode,
    pub detail: String,
}

impl fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.detail)
    }
}

impl Wire for ErrorFrame {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.code.tag());
        self.detail.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ErrorFrame { code: ErrorCode::from_tag(r.get_u8()?)?, detail: String::decode(r)? })
    }
}

impl ErrorFrame {
    /// Classify a wire decoding failure.
    pub fn from_wire_error(e: &WireError) -> Self {
        let code = match e {
            WireError::BadTag(_) => ErrorCode::BadTag,
            _ => ErrorCode::BadFrame,
        };
        ErrorFrame { code, detail: e.to_string() }
    }

    /// Classify a ledger-level failure.
    pub fn from_ledger_error(e: &LedgerError) -> Self {
        let code = match e {
            LedgerError::UnknownJournal(_)
            | LedgerError::UnknownBlock(_)
            | LedgerError::Occulted(_)
            | LedgerError::Purged(_)
            | LedgerError::Shard(_)
            | LedgerError::Clue(_) => ErrorCode::NotFound,
            LedgerError::BadClientSignature
            | LedgerError::UnknownMember
            | LedgerError::BadPurgePoint(_)
            | LedgerError::InsufficientSignatures(_)
            | LedgerError::Accumulator(_)
            | LedgerError::State(_)
            | LedgerError::BadReceipt => ErrorCode::Rejected,
            LedgerError::Storage(_) | LedgerError::Recovery(_) => ErrorCode::Durability,
            LedgerError::Time(_) | LedgerError::AuditFailed(_) | LedgerError::TaskFailed(_) => {
                ErrorCode::Internal
            }
        };
        ErrorFrame { code, detail: e.to_string() }
    }
}

/// A server response.
#[derive(Clone, Debug)]
pub enum Response {
    Hello(ServerInfo),
    /// Durable append acknowledgement.
    Appended { jsn: u64, tx_hash: Digest },
    /// Durable append + seal: the LSP receipt.
    Committed(Receipt),
    Tx { journal: Journal, payload: Option<Vec<u8>> },
    TxList(Vec<u64>),
    Proof { tx_hash: Digest, proof: FamProof },
    ClueProof(ClueProof),
    /// The supplied proof verified server-side.
    Verified,
    Anchor(TrustedAnchor),
    BlockFeed(Vec<Block>),
    Error(ErrorFrame),
    /// Telemetry text exposition (UTF-8 Prometheus-style format).
    Stats(String),
    /// Positional outcome of an [`Request::AppendBatch`]: one durable
    /// ack or one typed rejection per submitted request. A rejected item
    /// never consumed a jsn.
    AppendBatchResult(Vec<Result<AppendedAck, ErrorFrame>>),
    /// Positional answers to a [`Request::GetProofBatch`].
    ProofBatch(Vec<Result<ProofItem, ErrorFrame>>),
    /// The span events recorded for a [`Request::GetTrace`] id, ordered
    /// by start time. Empty when the trace is unknown or aged out.
    Trace(Vec<SpanRecord>),
    /// The server's shard topology.
    Topology(TopologyInfo),
    /// Epoch anchor records (claims — the client verifies each root
    /// against its own synced shard chains before mirroring).
    EpochAnchors(Vec<EpochAnchor>),
    /// A composed shard + anchor existence proof.
    Composed(ComposedProof),
    /// A state-commitment proof (inclusion or absence, either backend).
    StateProof(StateProof),
}

/// What [`Request::GetTopology`] answers.
#[derive(Clone, Debug)]
pub struct TopologyInfo {
    /// Shard count K (1 on an unsharded deployment).
    pub shards: u32,
    /// Epoch anchors cut so far.
    pub epochs: u64,
    /// The top-level anchor root (ZERO before the first epoch).
    pub top_root: Digest,
}

impl Wire for TopologyInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.shards);
        w.put_u64(self.epochs);
        self.top_root.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TopologyInfo {
            shards: r.get_u32()?,
            epochs: r.get_u64()?,
            top_root: Digest::decode(r)?,
        })
    }
}

/// One recorded span, as served over the wire and joined client-side
/// with the client-observed latency (`RemoteLedger::last_trace_id`).
/// Timestamps are nanoseconds on the server's monotonic trace clock —
/// only differences and ordering are meaningful to a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub span: u64,
    /// Parent span id; 0 for the request root.
    pub parent: u64,
    pub name: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl Wire for SpanRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.span);
        w.put_u64(self.parent);
        self.name.encode(w);
        w.put_u64(self.start_ns);
        w.put_u64(self.end_ns);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SpanRecord {
            span: r.get_u64()?,
            parent: r.get_u64()?,
            name: String::decode(r)?,
            start_ns: r.get_u64()?,
            end_ns: r.get_u64()?,
        })
    }
}

/// One durable append acknowledgement inside a batched response.
#[derive(Clone, Debug)]
pub struct AppendedAck {
    pub jsn: u64,
    pub tx_hash: Digest,
}

impl Wire for AppendedAck {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.jsn);
        self.tx_hash.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AppendedAck { jsn: r.get_u64()?, tx_hash: Digest::decode(r)? })
    }
}

/// One existence proof inside a batched response.
#[derive(Clone, Debug)]
pub struct ProofItem {
    pub tx_hash: Digest,
    pub proof: FamProof,
}

impl Wire for ProofItem {
    fn encode(&self, w: &mut Writer) {
        self.tx_hash.encode(w);
        self.proof.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ProofItem { tx_hash: Digest::decode(r)?, proof: FamProof::decode(r)? })
    }
}

/// Per-item outcome encoding: `1 · item` or `0 · error`, preceded by a
/// u64 batch length. Shared by both batched responses so ok/err framing
/// stays uniform on the wire.
fn encode_batch<T: Wire>(items: &[Result<T, ErrorFrame>], w: &mut Writer) {
    w.put_u64(items.len() as u64);
    for item in items {
        match item {
            Ok(v) => {
                w.put_u8(1);
                v.encode(w);
            }
            Err(e) => {
                w.put_u8(0);
                e.encode(w);
            }
        }
    }
}

fn decode_batch<T: Wire>(r: &mut Reader<'_>) -> Result<Vec<Result<T, ErrorFrame>>, WireError> {
    // Each item is at least the ok/err tag byte.
    let n = r.get_seq_len(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match r.get_u8()? {
            1 => Ok(T::decode(r)?),
            0 => Err(ErrorFrame::decode(r)?),
            t => return Err(WireError::BadTag(t)),
        });
    }
    Ok(out)
}

impl Wire for Response {
    fn encode(&self, w: &mut Writer) {
        match self {
            Response::Hello(info) => {
                w.put_u8(0);
                info.encode(w);
            }
            Response::Appended { jsn, tx_hash } => {
                w.put_u8(1);
                w.put_u64(*jsn);
                tx_hash.encode(w);
            }
            Response::Committed(receipt) => {
                w.put_u8(2);
                receipt.encode(w);
            }
            Response::Tx { journal, payload } => {
                w.put_u8(3);
                journal.encode(w);
                payload.encode(w);
            }
            Response::TxList(jsns) => {
                w.put_u8(4);
                jsns.encode(w);
            }
            Response::Proof { tx_hash, proof } => {
                w.put_u8(5);
                tx_hash.encode(w);
                proof.encode(w);
            }
            Response::ClueProof(proof) => {
                w.put_u8(6);
                proof.encode(w);
            }
            Response::Verified => w.put_u8(7),
            Response::Anchor(anchor) => {
                w.put_u8(8);
                anchor.encode(w);
            }
            Response::BlockFeed(blocks) => {
                w.put_u8(9);
                blocks.encode(w);
            }
            Response::Error(err) => {
                w.put_u8(10);
                err.encode(w);
            }
            Response::Stats(text) => {
                w.put_u8(11);
                text.encode(w);
            }
            Response::AppendBatchResult(items) => {
                w.put_u8(12);
                encode_batch(items, w);
            }
            Response::ProofBatch(items) => {
                w.put_u8(13);
                encode_batch(items, w);
            }
            Response::Trace(spans) => {
                w.put_u8(14);
                spans.encode(w);
            }
            Response::Topology(info) => {
                w.put_u8(15);
                info.encode(w);
            }
            Response::EpochAnchors(records) => {
                w.put_u8(16);
                records.encode(w);
            }
            Response::Composed(proof) => {
                w.put_u8(17);
                proof.encode(w);
            }
            Response::StateProof(proof) => {
                w.put_u8(18);
                proof.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Response::Hello(ServerInfo::decode(r)?)),
            1 => Ok(Response::Appended { jsn: r.get_u64()?, tx_hash: Digest::decode(r)? }),
            2 => Ok(Response::Committed(Receipt::decode(r)?)),
            3 => Ok(Response::Tx {
                journal: Journal::decode(r)?,
                payload: Option::<Vec<u8>>::decode(r)?,
            }),
            4 => Ok(Response::TxList(Vec::decode(r)?)),
            5 => Ok(Response::Proof { tx_hash: Digest::decode(r)?, proof: FamProof::decode(r)? }),
            6 => Ok(Response::ClueProof(ClueProof::decode(r)?)),
            7 => Ok(Response::Verified),
            8 => Ok(Response::Anchor(TrustedAnchor::decode(r)?)),
            9 => Ok(Response::BlockFeed(Vec::decode(r)?)),
            10 => Ok(Response::Error(ErrorFrame::decode(r)?)),
            11 => Ok(Response::Stats(String::decode(r)?)),
            12 => Ok(Response::AppendBatchResult(decode_batch(r)?)),
            13 => Ok(Response::ProofBatch(decode_batch(r)?)),
            14 => Ok(Response::Trace(Vec::decode(r)?)),
            15 => Ok(Response::Topology(TopologyInfo::decode(r)?)),
            16 => Ok(Response::EpochAnchors(Vec::decode(r)?)),
            17 => Ok(Response::Composed(ComposedProof::decode(r)?)),
            18 => Ok(Response::StateProof(StateProof::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::keys::KeyPair;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let body = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(body, b"hello frame");
    }

    #[test]
    fn traced_frame_round_trips_and_downgrades() {
        let mut buf = Vec::new();
        write_traced_frame(&mut buf, 0xdead_beef_0042, b"traced body").unwrap();
        assert_eq!(buf[0], TRACED_PROTOCOL_VERSION);
        // Trace-aware readers get the id; version-1 `read_frame` callers
        // get the same body with the envelope stripped.
        let (trace, body) =
            read_frame_traced(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(trace, Some(0xdead_beef_0042));
        assert_eq!(body, b"traced body");
        assert_eq!(
            read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap(),
            b"traced body"
        );
        // And an untraced frame reads back with no id.
        let mut v1 = Vec::new();
        write_frame(&mut v1, b"plain").unwrap();
        let (trace, body) = read_frame_traced(&mut Cursor::new(&v1), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(trace, None);
        assert_eq!(body, b"plain");
    }

    #[test]
    fn hostile_trace_envelopes_are_typed_errors() {
        // Truncated envelope: flags say "trace follows" but the id is cut.
        let mut frame = vec![TRACED_PROTOCOL_VERSION, 0, 0, 0, 5, 1, 0xaa, 0xbb, 0xcc, 0xdd];
        assert!(matches!(
            read_frame(&mut Cursor::new(&frame), DEFAULT_MAX_FRAME),
            Err(FrameError::BadEnvelope)
        ));
        // Unknown flag bits must be rejected, not silently skipped.
        frame = vec![TRACED_PROTOCOL_VERSION, 0, 0, 0, 2, 0x82, 0];
        assert!(matches!(
            read_frame(&mut Cursor::new(&frame), DEFAULT_MAX_FRAME),
            Err(FrameError::BadEnvelope)
        ));
        // Empty v2 body (no flags byte at all).
        frame = vec![TRACED_PROTOCOL_VERSION, 0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut Cursor::new(&frame), DEFAULT_MAX_FRAME),
            Err(FrameError::BadEnvelope)
        ));
        // An unflagged v2 envelope is legal: flags=0, body follows.
        let mut ok = vec![TRACED_PROTOCOL_VERSION, 0, 0, 0, 3, 0];
        ok.extend_from_slice(b"hi");
        let (trace, body) = read_frame_traced(&mut Cursor::new(&ok), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(trace, None);
        assert_eq!(body, b"hi");
    }

    #[test]
    fn trace_messages_round_trip() {
        let req = Request::GetTrace(77);
        assert!(matches!(Request::from_wire(&req.to_wire()), Ok(Request::GetTrace(77))));
        let resp = Response::Trace(vec![
            SpanRecord {
                span: 2,
                parent: 1,
                name: "locked_insert".into(),
                start_ns: 100,
                end_ns: 250,
            },
            SpanRecord { span: 1, parent: 0, name: "append".into(), start_ns: 50, end_ns: 400 },
        ]);
        let Response::Trace(decoded) = Response::from_wire(&resp.to_wire()).unwrap() else {
            panic!("wrong response kind");
        };
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].name, "locked_insert");
        assert_eq!(decoded[1].parent, 0);
        // Empty trace (unknown id) round-trips too.
        assert!(matches!(
            Response::from_wire(&Response::Trace(Vec::new()).to_wire()),
            Ok(Response::Trace(v)) if v.is_empty()
        ));
    }

    #[test]
    fn clean_eof_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut Cursor::new(empty), DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let frame = [9u8, 0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut Cursor::new(&frame[..]), DEFAULT_MAX_FRAME),
            Err(FrameError::BadVersion(9))
        ));
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut frame = vec![PROTOCOL_VERSION];
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&frame), 1024),
            Err(FrameError::Oversized { len: u32::MAX, max: 1024 })
        ));
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"whole body").unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn over_u32_body_is_frame_too_large() {
        // The length guard, exercised without a 4 GiB allocation.
        let too_big = u32::MAX as usize + 1;
        assert!(matches!(
            check_frame_len(too_big),
            Err(FrameError::FrameTooLarge { len }) if len == too_big as u64
        ));
        assert!(matches!(check_frame_len(u32::MAX as usize), Ok(u32::MAX)));
        assert!(matches!(check_frame_len(0), Ok(0)));
    }

    #[test]
    fn multi_chunk_body_round_trips() {
        // A body spanning several READ_CHUNK steps survives the
        // incremental read intact.
        let body: Vec<u8> = (0..READ_CHUNK * 3 + 17).map(|i| (i % 251) as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        let got = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(got, body);
    }

    #[test]
    fn hostile_length_prefix_reads_only_delivered_bytes() {
        // A header claiming a large in-bound body, with only a few bytes
        // behind it: the incremental reader must stop at the first short
        // read instead of trusting the prefix.
        let claimed: u32 = DEFAULT_MAX_FRAME;
        let mut frame = vec![PROTOCOL_VERSION];
        frame.extend_from_slice(&claimed.to_be_bytes());
        frame.extend_from_slice(&[0xAB; 100]);
        assert!(matches!(
            read_frame(&mut Cursor::new(&frame), DEFAULT_MAX_FRAME),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        let keys = KeyPair::from_seed(b"proto");
        let tx = TxRequest::signed(&keys, b"payload".to_vec(), vec!["clue".into()], 7);
        let cases = vec![
            Request::Hello,
            Request::Append(tx.clone()),
            Request::AppendCommitted(tx),
            Request::GetTx(42),
            Request::ListTx("asset".into()),
            Request::GetAnchor,
            Request::GetBlockFeed { from_height: 3, max_blocks: 100 },
            Request::GetClueProof("asset".into()),
            Request::Stats,
            Request::AppendBatch(vec![
                TxRequest::signed(&keys, b"b0".to_vec(), vec![], 8),
                TxRequest::signed(&keys, b"b1".to_vec(), vec!["c".into()], 9),
            ]),
            Request::GetProofBatch { jsns: vec![1, 5, 9], anchor: TrustedAnchor::default() },
            Request::GetTopology,
            Request::GetShardBlockFeed { shard: 3, from_height: 4, max_blocks: 64 },
            Request::GetEpochAnchors { from_epoch: 11 },
            Request::GetComposedProof { jsn: 1 << 56 | 9, anchor: TrustedAnchor::default() },
            Request::GetStateProof("asset".into()),
        ];
        for req in cases {
            let decoded = Request::from_wire(&req.to_wire()).unwrap();
            // Structural spot checks (Request has no PartialEq by design —
            // proofs inside are deep structures).
            assert_eq!(
                std::mem::discriminant(&decoded),
                std::mem::discriminant(&req),
                "{req:?}"
            );
        }
    }

    #[test]
    fn sharded_messages_round_trip() {
        let shard_fields = Request::GetShardBlockFeed { shard: 7, from_height: 21, max_blocks: 8 };
        match Request::from_wire(&shard_fields.to_wire()).unwrap() {
            Request::GetShardBlockFeed { shard, from_height, max_blocks } => {
                assert_eq!((shard, from_height, max_blocks), (7, 21, 8));
            }
            other => panic!("wrong decode: {other:?}"),
        }

        let topo = TopologyInfo {
            shards: 4,
            epochs: 9,
            top_root: ledgerdb_crypto::sha256(b"top"),
        };
        match Response::from_wire(&Response::Topology(topo.clone()).to_wire()).unwrap() {
            Response::Topology(decoded) => {
                assert_eq!(decoded.shards, topo.shards);
                assert_eq!(decoded.epochs, topo.epochs);
                assert_eq!(decoded.top_root, topo.top_root);
            }
            other => panic!("wrong decode: {other:?}"),
        }

        let record = EpochAnchor {
            epoch: 3,
            heights: vec![1, 0, 2],
            roots: vec![
                ledgerdb_crypto::sha256(b"r0"),
                ledgerdb_crypto::sha256(b"r1"),
                ledgerdb_crypto::sha256(b"r2"),
            ],
        };
        match Response::from_wire(&Response::EpochAnchors(vec![record.clone()]).to_wire()).unwrap()
        {
            Response::EpochAnchors(decoded) => {
                assert_eq!(decoded.len(), 1);
                assert_eq!(decoded[0].epoch, record.epoch);
                assert_eq!(decoded[0].heights, record.heights);
                assert_eq!(decoded[0].roots, record.roots);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn error_frames_round_trip() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::BadTag,
            ErrorCode::Rejected,
            ErrorCode::NotFound,
            ErrorCode::Unavailable,
            ErrorCode::ShuttingDown,
            ErrorCode::Durability,
            ErrorCode::Internal,
            ErrorCode::Oversized,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Busy,
        ] {
            let frame = ErrorFrame { code, detail: "why".into() };
            let decoded = ErrorFrame::from_wire(&frame.to_wire()).unwrap();
            assert_eq!(decoded.code, code);
            assert_eq!(decoded.detail, "why");
        }
        assert!(ErrorFrame::from_wire(&[99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn hostile_request_bodies_decode_to_typed_errors() {
        // Unknown tag.
        assert!(matches!(Request::from_wire(&[200]), Err(WireError::BadTag(200))));
        // Truncated GetTx.
        assert!(matches!(Request::from_wire(&[3, 0, 0]), Err(WireError::UnexpectedEnd)));
        // Trailing garbage.
        let mut bytes = Request::GetTx(1).to_wire();
        bytes.push(0xFF);
        assert!(matches!(Request::from_wire(&bytes), Err(WireError::TrailingBytes(1))));
    }

    #[test]
    fn batched_responses_round_trip_mixed_outcomes() {
        let items = vec![
            Ok(AppendedAck { jsn: 4, tx_hash: Digest::ZERO }),
            Err(ErrorFrame { code: ErrorCode::Rejected, detail: "bad sig".into() }),
            Ok(AppendedAck { jsn: 5, tx_hash: Digest::ZERO }),
        ];
        let resp = Response::AppendBatchResult(items);
        let Response::AppendBatchResult(decoded) = Response::from_wire(&resp.to_wire()).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].as_ref().unwrap().jsn, 4);
        let err = decoded[1].as_ref().unwrap_err();
        assert_eq!(err.code, ErrorCode::Rejected);
        assert_eq!(err.detail, "bad sig");
        assert_eq!(decoded[2].as_ref().unwrap().jsn, 5);

        // Empty batch and hostile item tag.
        let empty = Response::ProofBatch(Vec::new());
        assert!(matches!(
            Response::from_wire(&empty.to_wire()).unwrap(),
            Response::ProofBatch(v) if v.is_empty()
        ));
        let mut bytes = Response::AppendBatchResult(Vec::new()).to_wire();
        // Claim one item, then supply tag 7 (neither ok nor err).
        bytes[1..9].copy_from_slice(&1u64.to_be_bytes());
        bytes.push(7);
        assert!(matches!(Response::from_wire(&bytes), Err(WireError::BadTag(7))));
    }

    #[test]
    fn hostile_batch_length_rejected_before_allocation() {
        // A GetProofBatch claiming u64::MAX jsns in a tiny body must be
        // rejected by the length-vs-remaining-bytes check, not OOM.
        let mut w = Writer::new();
        w.put_u8(12);
        w.put_u64(u64::MAX);
        assert!(Request::from_wire(&w.into_bytes()).is_err());
    }

    #[test]
    fn ledger_error_classification() {
        assert_eq!(
            ErrorFrame::from_ledger_error(&LedgerError::UnknownJournal(9)).code,
            ErrorCode::NotFound
        );
        assert_eq!(
            ErrorFrame::from_ledger_error(&LedgerError::BadClientSignature).code,
            ErrorCode::Rejected
        );
        let io = std::io::Error::new(std::io::ErrorKind::Other, "disk on fire");
        assert_eq!(
            ErrorFrame::from_ledger_error(&LedgerError::Storage(io.into())).code,
            ErrorCode::Durability
        );
    }
}
