//! Group commit: amortizing the fsync across concurrent appenders.
//!
//! Per-append durability (`FsyncPolicy::Always`) costs one payload fsync
//! and one WAL fsync per transaction — the disk barrier, not the
//! cryptography, dominates. The [`GroupCommitter`] runs one committer
//! thread that drains queued appends into a batch (bounded by
//! [`BatchConfig::max_batch`] requests or [`BatchConfig::max_delay`] of
//! accumulation), commits the whole batch through
//! [`SharedLedger::append_batch`] — which writes every payload with one
//! `write`+`fsync` and every journal WAL record behind one final sync
//! barrier — and only *then* answers each waiting request. The ack
//! contract is identical to per-append fsync: **no request is
//! acknowledged before its bytes are stable**; only the latency of the
//! barrier is shared.
//!
//! Ordering discipline (DESIGN §6 payload→WAL→memory) holds batch-wide:
//! all payloads of a batch are durable before any of its WAL records is
//! written, so a crash can strand orphan payloads (recovery trims them)
//! but never a journal record whose payload is missing.

use crate::metrics::BatchMetrics;
use crate::protocol::{ErrorCode, ErrorFrame};
use ledgerdb_core::{Receipt, SharedLedger, TxRequest};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::sync::Mutex;
use ledgerdb_telemetry::trace::{self, TraceContext};
use ledgerdb_telemetry::Registry;
use std::sync::mpsc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Where π_c (the client signature) is checked before a request reaches
/// the commit path.
///
/// The paper's deployment (Fig 1) fronts the ledger server with a proxy
/// fleet that authenticates clients; the kernel exposes
/// [`LedgerDb::append_preverified`] for exactly that split. A server
/// trusting its proxy tier skips the per-request ECDSA verify — the
/// dominant CPU cost of an append — while membership is still enforced
/// at commit. A server exposed directly to clients must verify.
///
/// [`LedgerDb::append_preverified`]: ledgerdb_core::LedgerDb::append_preverified
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// Verify membership + π_c on every append (direct-to-client
    /// deployment; the default).
    #[default]
    Verify,
    /// Trust that an upstream proxy tier verified π_c; enforce only
    /// membership (Fig-1 deployment behind authenticated proxies).
    ProxyTrusted,
}

/// Group-commit tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Commit as soon as this many requests are queued.
    pub max_batch: usize,
    /// Commit a non-empty batch after at most this much accumulation.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        // 150µs measured as the throughput knee on the reference box:
        // wide enough to gather the concurrent burst that follows an
        // ack, narrow enough that a lone append is not stalled
        // noticeably (see BENCH_server.json).
        BatchConfig { max_batch: 64, max_delay: Duration::from_micros(150) }
    }
}

/// What a committed job resolves to.
#[derive(Clone, Debug)]
pub enum CommitOutcome {
    /// A durable plain append.
    Appended { jsn: u64, tx_hash: Digest },
    /// A durable append sealed into a block, with the LSP receipt.
    Committed(Receipt),
}

/// A queued append waiting for its batch to become durable.
struct Job {
    request: TxRequest,
    /// Seal + receipt requested (`AppendCommitted`).
    committed: bool,
    /// When the job entered the queue (for `batch_queue_wait_seconds`).
    enqueued: Instant,
    /// The same instant on the trace clock, plus the submitter's trace
    /// context: the committer records the real queue wait into the
    /// submitting request's span tree and installs a window scope over
    /// every member so the shared commit stages (fsync barrier, seal)
    /// land in each tree.
    enqueued_ns: u64,
    ctx: Option<TraceContext>,
    /// `Some` until the job is answered. [`Job::settle`] is the only
    /// path that replies and the only path that decrements the
    /// queue-depth gauge, so both happen exactly once per job.
    reply: Option<mpsc::SyncSender<Result<CommitOutcome, ErrorFrame>>>,
    metrics: BatchMetrics,
}

impl Job {
    /// Answer the waiting submitter (at most once) and take the job off
    /// the queue-depth gauge. The receiver may have given up
    /// (connection died): a failed send is ignored — the append is
    /// durable regardless, which is exactly the at-least-once contract.
    fn settle(&mut self, outcome: Result<CommitOutcome, ErrorFrame>) {
        if let Some(reply) = self.reply.take() {
            self.metrics.queue_depth.add(-1);
            let _ = reply.send(outcome);
        }
    }
}

impl Drop for Job {
    /// A job dropped unanswered — committer panic, or a queue torn down
    /// with jobs still buffered — must neither strand its submitter on
    /// `recv` nor leak the queue-depth gauge: settle with a typed
    /// rejection on the way out.
    fn drop(&mut self) {
        self.settle(Err(ErrorFrame {
            code: ErrorCode::ShuttingDown,
            detail: "group committer dropped the job before answering".into(),
        }));
    }
}

/// Handle to the committer thread. Cloneable submission via
/// [`GroupCommitter::submit`]; [`GroupCommitter::shutdown`] drains every
/// queued job before returning.
pub struct GroupCommitter {
    shared: SharedLedger,
    admission: Admission,
    metrics: BatchMetrics,
    submit_tx: Mutex<Option<mpsc::Sender<Job>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl GroupCommitter {
    /// Spawn the committer thread over a shared ledger, recording into
    /// the process-global telemetry registry.
    pub fn start(shared: SharedLedger, config: BatchConfig, admission: Admission) -> Self {
        Self::start_with(shared, config, admission, Registry::global())
    }

    /// As [`GroupCommitter::start`], recording into an explicit registry.
    pub fn start_with(
        shared: SharedLedger,
        config: BatchConfig,
        admission: Admission,
        registry: &Registry,
    ) -> Self {
        Self::start_with_pool(shared, config, admission, registry, None)
    }

    /// As [`GroupCommitter::start_with`], with an optional compute
    /// pool. With a pool, each commit window's digest precompute runs
    /// across the pool *before* the committer takes the write lock
    /// (π_c was already checked at [`GroupCommitter::submit`], so the
    /// off-lock stage hashes only); the locked window is structural
    /// inserts plus one WAL write. Results are byte-identical to the
    /// serial path.
    pub fn start_with_pool(
        shared: SharedLedger,
        config: BatchConfig,
        admission: Admission,
        registry: &Registry,
        pool: Option<std::sync::Arc<ledgerdb_pool::Pool>>,
    ) -> Self {
        let metrics = BatchMetrics::bind(registry);
        let (tx, rx) = mpsc::channel::<Job>();
        let committer_shared = shared.clone();
        let committer_metrics = metrics.clone();
        let handle = thread::Builder::new()
            .name("ledgerd-committer".into())
            .spawn(move || committer_loop(committer_shared, config, rx, committer_metrics, pool))
            .expect("spawn committer thread");
        GroupCommitter {
            shared,
            admission,
            metrics,
            submit_tx: Mutex::new(Some(tx)),
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Queue one append and block until its batch is durable (or
    /// rejected). Returns a `ShuttingDown` error frame if the committer
    /// has been stopped.
    ///
    /// Admission (membership + π_c) runs here, on the *caller's*
    /// thread under a shared read lock — concurrent submitters verify
    /// signatures in parallel and the serial committer only pays for
    /// hashing and I/O. Under [`Admission::ProxyTrusted`] π_c is the
    /// proxy tier's job and only membership is checked (at commit).
    pub fn submit(
        &self,
        request: TxRequest,
        committed: bool,
    ) -> Result<CommitOutcome, ErrorFrame> {
        if self.admission == Admission::Verify {
            self.shared
                .verify_request(&request)
                .map_err(|e| ErrorFrame::from_ledger_error(&e))?;
        }
        let shutting_down = || ErrorFrame {
            code: ErrorCode::ShuttingDown,
            detail: "group committer stopped".into(),
        };
        let sender = match &*self.submit_tx.lock() {
            Some(tx) => tx.clone(),
            None => return Err(shutting_down()),
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        self.metrics.queue_depth.add(1);
        let job = Job {
            request,
            committed,
            enqueued: Instant::now(),
            enqueued_ns: trace::now_ns(),
            ctx: trace::current(),
            reply: Some(reply_tx),
            metrics: self.metrics.clone(),
        };
        if sender.send(job).is_err() {
            // Committer gone: the rejected Job settled itself (gauge
            // decrement included) when the failed send dropped it.
            return Err(shutting_down());
        }
        // Drop our sender clone *before* blocking on the reply: a
        // waiter must not keep the channel open, or a steady stream of
        // submitters racing `shutdown()` could hold its drain (which
        // runs until every sender is gone) open indefinitely.
        drop(sender);
        reply_rx.recv().unwrap_or_else(|_| Err(shutting_down()))
    }

    /// Stop accepting new jobs, drain everything already queued (each
    /// gets its durable ack or error), and join the committer thread.
    /// Idempotent.
    pub fn shutdown(&self) {
        drop(self.submit_tx.lock().take());
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn committer_loop(
    shared: SharedLedger,
    config: BatchConfig,
    rx: mpsc::Receiver<Job>,
    metrics: BatchMetrics,
    pool: Option<std::sync::Arc<ledgerdb_pool::Pool>>,
) {
    let max_batch = config.max_batch.max(1);
    loop {
        // Block for the first job of the next batch; channel closed and
        // drained means shutdown.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut jobs = vec![first];
        let deadline = Instant::now() + config.max_delay;
        loop {
            while jobs.len() < max_batch {
                match rx.try_recv() {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
            if jobs.len() >= max_batch {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Sleep the window out in one gulp rather than blocking in
            // `recv_timeout`: senders enqueue without waking this thread
            // (nobody is parked on the channel), so a batch of N costs
            // one committer wakeup instead of N — a real saving when
            // cores are scarce.
            thread::sleep(deadline - now);
        }
        commit_batch(&shared, jobs, &metrics, pool.as_deref());
    }
}

/// Make one batch durable and answer every job (via [`Job::settle`], so
/// each waiter is answered exactly once even on the error paths).
fn commit_batch(
    shared: &SharedLedger,
    mut jobs: Vec<Job>,
    metrics: &BatchMetrics,
    pool: Option<&ledgerdb_pool::Pool>,
) {
    metrics.windows.inc();
    metrics.batch_size.observe(jobs.len() as u64);
    let window_start_ns = trace::now_ns();
    for job in &jobs {
        metrics.queue_wait_seconds.observe_duration(job.enqueued.elapsed());
        if let Some(ctx) = job.ctx {
            trace::record_span(ctx, "batch_queue_wait", job.enqueued_ns, window_start_ns);
        }
    }
    // Every stage below this point — WAL write, seal legs, the shared
    // fsync barrier — records one span per member trace.
    let members: Vec<TraceContext> = jobs.iter().filter_map(|job| job.ctx).collect();
    let _window_scope = trace::install_window(&members);
    let _commit_span = metrics.commit_seconds.time("batch_commit");
    let requests: Vec<TxRequest> = jobs.iter().map(|j| j.request.clone()).collect();
    // π_c was verified at submit(); with a pool the digest precompute
    // fans out off-lock, and either way the batched commit skips the
    // redundant ECDSA.
    let results = match pool {
        Some(pool) => shared.append_batch_preverified_pipelined(requests, pool),
        None => shared.append_batch_preverified(requests),
    };
    let results = match results {
        Ok(results) => results,
        Err(e) => {
            // Batch-wide failure: nothing was acked, nothing is promised.
            let frame = ErrorFrame::from_ledger_error(&e);
            for job in &mut jobs {
                job.settle(Err(frame.clone()));
            }
            return;
        }
    };
    debug_assert_eq!(results.len(), jobs.len());

    // Seal before answering `committed` jobs: a receipt binds its block
    // hash, so the seal's WAL record must be durable before the receipt
    // leaves the building.
    let wants_seal = jobs
        .iter()
        .zip(&results)
        .any(|(job, result)| job.committed && result.is_ok());
    let seal_error = if wants_seal {
        shared
            .try_seal_block()
            .and_then(|()| shared.sync_durable())
            .err()
            .map(|e| ErrorFrame::from_ledger_error(&e))
    } else {
        None
    };

    for (mut job, result) in jobs.into_iter().zip(results) {
        let outcome = match result {
            Err(e) => Err(ErrorFrame::from_ledger_error(&e)),
            Ok(ack) if !job.committed => {
                Ok(CommitOutcome::Appended { jsn: ack.jsn, tx_hash: ack.tx_hash })
            }
            Ok(ack) => match &seal_error {
                Some(frame) => Err(frame.clone()),
                None => match shared.receipt(ack.jsn) {
                    Ok(Some(receipt)) => Ok(CommitOutcome::Committed(receipt)),
                    Ok(None) => Err(ErrorFrame {
                        code: ErrorCode::Internal,
                        detail: format!("journal {} sealed but receipt unavailable", ack.jsn),
                    }),
                    Err(e) => Err(ErrorFrame::from_ledger_error(&e)),
                },
            },
        };
        job.settle(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared;

    #[test]
    fn concurrent_submitters_share_batches() {
        let (shared, alice) = shared(16);
        let committer = GroupCommitter::start(
            shared.clone(),
            BatchConfig { max_batch: 8, max_delay: Duration::from_millis(20) },
            Admission::Verify,
        );
        let outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..24u64)
                .map(|i| {
                    let committer = &committer;
                    let req = TxRequest::signed(
                        &alice,
                        format!("doc-{i}").into_bytes(),
                        vec![format!("c{}", i % 3)],
                        i,
                    );
                    scope.spawn(move || committer.submit(req, false))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        let mut jsns: Vec<u64> = outcomes
            .into_iter()
            .map(|o| match o.unwrap() {
                CommitOutcome::Appended { jsn, .. } => jsn,
                other => panic!("expected plain ack, got {other:?}"),
            })
            .collect();
        jsns.sort_unstable();
        assert_eq!(jsns, (0..24).collect::<Vec<_>>());
        committer.shutdown();
        assert_eq!(shared.journal_count(), 24);
    }

    #[test]
    fn committed_jobs_get_verifying_receipts() {
        let (shared, alice) = shared(64);
        let committer = GroupCommitter::start(shared.clone(), BatchConfig::default(), Admission::Verify);
        let req = TxRequest::signed(&alice, b"receipt me".to_vec(), vec!["r".into()], 1);
        let outcome = committer.submit(req, true).unwrap();
        match outcome {
            CommitOutcome::Committed(receipt) => {
                assert!(receipt.verify());
                assert_eq!(receipt.jsn, 0);
            }
            other => panic!("expected receipt, got {other:?}"),
        }
        // The seal happened even though block_size (64) wasn't reached.
        assert_eq!(shared.block_count(), 1);
    }

    #[test]
    fn rejected_requests_do_not_poison_the_batch() {
        let (shared, alice) = shared(16);
        let committer = GroupCommitter::start(
            shared.clone(),
            BatchConfig { max_batch: 4, max_delay: Duration::from_millis(50) },
            Admission::Verify,
        );
        let stranger = ledgerdb_crypto::keys::KeyPair::from_seed(b"not-registered");
        let outcomes = std::thread::scope(|scope| {
            let good_a = TxRequest::signed(&alice, b"a".to_vec(), vec![], 0);
            let bad = TxRequest::signed(&stranger, b"b".to_vec(), vec![], 1);
            let good_c = TxRequest::signed(&alice, b"c".to_vec(), vec![], 2);
            [good_a, bad, good_c].map(|req| {
                let committer = &committer;
                scope.spawn(move || committer.submit(req, false))
            })
            .map(|h| h.join().unwrap())
        });
        let (ok, err): (Vec<_>, Vec<_>) = outcomes.into_iter().partition(|o| o.is_ok());
        assert_eq!(ok.len(), 2);
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].as_ref().unwrap_err().code, ErrorCode::Rejected);
        assert_eq!(shared.journal_count(), 2);
    }

    #[test]
    fn telemetry_counts_windows_not_appends() {
        use ledgerdb_core::recovery::open_durable_with;
        use ledgerdb_core::{LedgerConfig, SharedLedger};
        use ledgerdb_storage::FsyncPolicy;
        use ledgerdb_telemetry::parse_value;
        use ledgerdb_timesvc::clock::SimClock;
        use std::sync::Arc;

        let (member_registry, alice) = crate::testutil::registry();
        let telemetry = Arc::new(Registry::new());
        let dir = std::env::temp_dir()
            .join(format!("ledgerdb-batch-telemetry-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config =
            LedgerConfig { block_size: 1024, fam_delta: 15, name: "batch-telemetry".into(), state_backend: Default::default() };
        // FsyncPolicy::Never: the committer's batch barrier is the only
        // fsync source, so the counter isolates group-commit behavior.
        let (ledger, _) = open_durable_with(
            config,
            member_registry,
            &dir,
            FsyncPolicy::Never,
            Arc::new(SimClock::new()),
            &telemetry,
        )
        .unwrap();
        let shared = SharedLedger::new(ledger);
        let fsyncs_before = telemetry.counter("storage_fsync_total").get();

        // Pre-sign every request and admit proxy-trusted: this test
        // measures how fsync barriers scale with commit windows, so the
        // slow client-side ECDSA (several ms per op in debug on a small
        // box) must not pace job arrival — it would stretch the
        // submission span across extra windows and turn the scaling
        // assertion into a CPU-speed assertion.
        let appends = 24u64;
        let requests: Vec<TxRequest> = (0..appends)
            .map(|i| TxRequest::signed(&alice, format!("t-{i}").into_bytes(), vec![], i))
            .collect();
        let committer = GroupCommitter::start_with(
            shared.clone(),
            BatchConfig { max_batch: 8, max_delay: Duration::from_millis(10) },
            Admission::ProxyTrusted,
            &telemetry,
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .into_iter()
                .map(|req| {
                    let committer = &committer;
                    scope.spawn(move || committer.submit(req, false).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        committer.shutdown();

        let text = ledgerdb_telemetry::render(&telemetry);
        let windows = parse_value(&text, "batch_windows_total").unwrap() as u64;
        assert!(windows >= 1, "at least one commit window ran");
        // Group commit's whole point: the disk barrier scales with
        // windows (payload + WAL fsync each), not with appends.
        let fsyncs = telemetry.counter("storage_fsync_total").get() - fsyncs_before;
        assert_eq!(fsyncs, 2 * windows, "two fsync barriers per commit window:\n{text}");
        assert!(fsyncs < appends, "fewer fsyncs ({fsyncs}) than appends ({appends})");
        // Every job passed through the queue-wait histogram and every
        // submitted append landed in exactly one window.
        assert_eq!(parse_value(&text, "batch_queue_wait_seconds_count"), Some(appends as f64));
        assert_eq!(parse_value(&text, "batch_size_sum"), Some(appends as f64));
        assert_eq!(parse_value(&text, "batch_windows_total"), Some(windows as f64));
        // Graceful drain flushed everything: no job still counted queued.
        assert_eq!(parse_value(&text, "batch_queue_depth"), Some(0.0));
        assert_eq!(shared.journal_count(), appends);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_race_rejects_typed_and_never_hangs() {
        use ledgerdb_telemetry::parse_value;
        use std::sync::atomic::{AtomicU64, Ordering};

        let telemetry = Registry::new();
        let (shared, alice) = shared(16);
        let acked = AtomicU64::new(0);
        // Several rounds with submitters mid-flight when shutdown lands,
        // to hit the clone-sender/drop-sender window from both sides.
        for round in 0..6u64 {
            let committer = GroupCommitter::start_with(
                shared.clone(),
                BatchConfig { max_batch: 4, max_delay: Duration::from_micros(200) },
                Admission::Verify,
                &telemetry,
            );
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    let committer = &committer;
                    let alice = &alice;
                    let acked = &acked;
                    scope.spawn(move || {
                        for i in 0.. {
                            let req = TxRequest::signed(
                                alice,
                                format!("race-{round}-{t}-{i}").into_bytes(),
                                vec![],
                                round << 32 | t << 16 | i,
                            );
                            // Every submit must resolve: a durable ack
                            // or a typed shutdown — never a hang, never
                            // an untyped failure.
                            match committer.submit(req, false) {
                                Ok(CommitOutcome::Appended { .. }) => {
                                    acked.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(other) => panic!("plain append acked as {other:?}"),
                                Err(frame) => {
                                    assert_eq!(frame.code, ErrorCode::ShuttingDown, "{frame}");
                                    return;
                                }
                            }
                        }
                    });
                }
                std::thread::sleep(Duration::from_millis(1 + round % 3));
                committer.shutdown();
            });
        }
        // Exactly the acked jobs are in the ledger: nothing acked was
        // lost, nothing unacked slipped in.
        assert_eq!(shared.journal_count(), acked.load(Ordering::Relaxed));
        // No job is still counted as queued once every round drained.
        let text = ledgerdb_telemetry::render(&telemetry);
        assert_eq!(parse_value(&text, "batch_queue_depth"), Some(0.0), "{text}");
    }

    #[test]
    fn submit_after_shutdown_fails_typed() {
        let (shared, alice) = shared(16);
        let committer = GroupCommitter::start(shared, BatchConfig::default(), Admission::Verify);
        committer.shutdown();
        let req = TxRequest::signed(&alice, b"late".to_vec(), vec![], 9);
        let err = committer.submit(req, false).unwrap_err();
        assert_eq!(err.code, ErrorCode::ShuttingDown);
    }
}
