//! [`RemoteLedger`]: the distrusting client end of the `ledgerd` wire.
//!
//! The transport is untrusted exactly like the LSP it fronts (§II-B
//! threat model): every byte that comes back is a *claim*. The remote
//! client therefore embeds a [`LedgerClient`] replica and
//!
//! * syncs by downloading sealed blocks over `GetBlockFeed` and
//!   replaying them through its own fam tree — a tampered feed is
//!   rejected at the first inconsistent block;
//! * requests existence proofs against **its own** anchor and verifies
//!   them against **its own** root ([`RemoteLedger::prove`] never
//!   returns an unverified proof);
//! * verifies receipts against the pinned LSP key and its own verified
//!   block-hash set.
//!
//! The LSP key and fam δ are learned from the `Hello` handshake —
//! trust-on-first-use. A deployment that distributes the LSP key
//! out-of-band should check [`RemoteLedger::info`] against the pinned
//! key after connecting.

use crate::protocol::{
    read_frame, write_frame, ErrorFrame, FrameError, ProofItem, Request, Response, ServerInfo,
    DEFAULT_MAX_FRAME,
};
use ledgerdb_accumulator::fam::FamProof;
use ledgerdb_clue::cm_tree::ClueProof;
use ledgerdb_core::client::{LedgerClient, SyncReport};
use ledgerdb_core::{Journal, LedgerError, Receipt, TxRequest};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::wire::{Wire, WireError};
use std::fmt;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum RemoteError {
    /// Transport/framing failure.
    Frame(FrameError),
    /// The server's bytes failed to decode.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server(ErrorFrame),
    /// The server answered with the wrong response kind.
    Protocol(String),
    /// Local verification rejected the server's claim.
    Verify(LedgerError),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Frame(e) => write!(f, "transport: {e}"),
            RemoteError::Wire(e) => write!(f, "undecodable response: {e}"),
            RemoteError::Server(e) => write!(f, "server error: {e}"),
            RemoteError::Protocol(what) => write!(f, "protocol violation: {what}"),
            RemoteError::Verify(e) => write!(f, "verification rejected server claim: {e}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<FrameError> for RemoteError {
    fn from(e: FrameError) -> Self {
        RemoteError::Frame(e)
    }
}

impl From<WireError> for RemoteError {
    fn from(e: WireError) -> Self {
        RemoteError::Wire(e)
    }
}

impl From<std::io::Error> for RemoteError {
    fn from(e: std::io::Error) -> Self {
        RemoteError::Frame(FrameError::Io(e))
    }
}

/// How many blocks one `GetBlockFeed` round trip asks for.
const SYNC_CHUNK: u64 = 256;

/// A connected, distrusting ledger client.
pub struct RemoteLedger {
    stream: TcpStream,
    /// Buffered read half (a `try_clone` of `stream`): one syscall per
    /// response frame instead of three.
    reader: BufReader<TcpStream>,
    info: ServerInfo,
    client: LedgerClient,
    max_frame: u32,
}

impl RemoteLedger {
    /// Connect and handshake. The returned client trusts only what it
    /// verifies; the LSP key is trust-on-first-use from the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteLedger, RemoteError> {
        let mut stream = TcpStream::connect(addr).map_err(RemoteError::from)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(RemoteError::from)?;
        write_frame(&mut stream, &Request::Hello.to_wire())?;
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME)?;
        let info = match Response::from_wire(&body)? {
            Response::Hello(info) => info,
            Response::Error(frame) => return Err(RemoteError::Server(frame)),
            other => return Err(unexpected("Hello", &other)),
        };
        let client = LedgerClient::new(info.lsp_pk, info.fam_delta);
        let reader = BufReader::with_capacity(16 * 1024, stream.try_clone()?);
        Ok(RemoteLedger { stream, reader, info, client, max_frame: DEFAULT_MAX_FRAME })
    }

    /// The handshake identity (check against out-of-band pins).
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// The embedded distrusting replica.
    pub fn client(&self) -> &LedgerClient {
        &self.client
    }

    /// One request/response round trip. Error frames become
    /// [`RemoteError::Server`].
    fn call(&mut self, request: &Request) -> Result<Response, RemoteError> {
        write_frame(&mut self.stream, &request.to_wire())?;
        let body = read_frame(&mut self.reader, self.max_frame)?;
        match Response::from_wire(&body)? {
            Response::Error(frame) => Err(RemoteError::Server(frame)),
            response => Ok(response),
        }
    }

    /// Append; the ack means the payload is durable server-side.
    pub fn append(&mut self, request: TxRequest) -> Result<(u64, Digest), RemoteError> {
        match self.call(&Request::Append(request))? {
            Response::Appended { jsn, tx_hash } => Ok((jsn, tx_hash)),
            other => Err(unexpected("Appended", &other)),
        }
    }

    /// Append a whole batch in one frame: one round trip, one
    /// group-committed durability barrier server-side. Each element of
    /// the result is that request's durable ack or its typed rejection
    /// — order is positional, matching `requests`.
    pub fn append_batch(
        &mut self,
        requests: Vec<TxRequest>,
    ) -> Result<Vec<Result<(u64, Digest), ErrorFrame>>, RemoteError> {
        let n = requests.len();
        let results = match self.call(&Request::AppendBatch(requests))? {
            Response::AppendBatchResult(results) => results,
            other => return Err(unexpected("AppendBatchResult", &other)),
        };
        if results.len() != n {
            return Err(RemoteError::Protocol(format!(
                "sent {n} batched appends, got {} results",
                results.len()
            )));
        }
        Ok(results
            .into_iter()
            .map(|result| result.map(|ack| (ack.jsn, ack.tx_hash)))
            .collect())
    }

    /// Append + seal; the receipt is *not* yet verified (its block must
    /// first be synced) — use [`RemoteLedger::append_committed_verified`]
    /// for the full distrusting round trip.
    pub fn append_committed(&mut self, request: TxRequest) -> Result<Receipt, RemoteError> {
        match self.call(&Request::AppendCommitted(request))? {
            Response::Committed(receipt) => Ok(receipt),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Append + seal, then sync the block feed and verify the receipt
    /// against the client's own verified chain before returning it.
    pub fn append_committed_verified(
        &mut self,
        request: TxRequest,
    ) -> Result<Receipt, RemoteError> {
        let receipt = self.append_committed(request)?;
        self.sync()?;
        self.client.verify_receipt(&receipt).map_err(RemoteError::Verify)?;
        Ok(receipt)
    }

    /// Download and verify new sealed blocks until the feed is drained.
    pub fn sync(&mut self) -> Result<SyncReport, RemoteError> {
        let mut total = SyncReport::default();
        loop {
            let request = Request::GetBlockFeed {
                from_height: self.client.height(),
                max_blocks: SYNC_CHUNK,
            };
            let blocks = match self.call(&request)? {
                Response::BlockFeed(blocks) => blocks,
                other => return Err(unexpected("BlockFeed", &other)),
            };
            let n = blocks.len() as u64;
            if n == 0 {
                return Ok(total);
            }
            let report = self.client.sync(&blocks).map_err(RemoteError::Verify)?;
            total.blocks_accepted += report.blocks_accepted;
            total.journals_replayed += report.journals_replayed;
            if n < SYNC_CHUNK {
                return Ok(total);
            }
        }
    }

    /// Fetch an existence proof for `jsn` against the client's **own**
    /// anchor and verify it against the client's own root before
    /// returning. An LSP that cannot prove the journal against the
    /// verified replica is caught here.
    pub fn prove(&mut self, jsn: u64) -> Result<(Digest, FamProof), RemoteError> {
        let anchor = self.client.anchor();
        let (tx_hash, proof) = match self.call(&Request::GetProof { jsn, anchor })? {
            Response::Proof { tx_hash, proof } => (tx_hash, proof),
            other => return Err(unexpected("Proof", &other)),
        };
        self.client
            .verify_existence(&tx_hash, &proof)
            .map_err(RemoteError::Verify)?;
        Ok((tx_hash, proof))
    }

    /// Fetch existence proofs for a batch of jsns in one frame, against
    /// the client's **own** anchor, and verify every returned proof
    /// against the client's own root before returning — a proof the
    /// server could forge or misattribute never leaves this method
    /// unverified. Per-item server rejections pass through positionally
    /// as `Err(ErrorFrame)`.
    pub fn prove_batch(
        &mut self,
        jsns: Vec<u64>,
    ) -> Result<Vec<Result<(Digest, FamProof), ErrorFrame>>, RemoteError> {
        let anchor = self.client.anchor();
        let n = jsns.len();
        let items = match self.call(&Request::GetProofBatch { jsns, anchor })? {
            Response::ProofBatch(items) => items,
            other => return Err(unexpected("ProofBatch", &other)),
        };
        if items.len() != n {
            return Err(RemoteError::Protocol(format!(
                "asked for {n} batched proofs, got {} items",
                items.len()
            )));
        }
        items
            .into_iter()
            .map(|item| match item {
                Ok(ProofItem { tx_hash, proof }) => {
                    self.client
                        .verify_existence(&tx_hash, &proof)
                        .map_err(RemoteError::Verify)?;
                    Ok(Ok((tx_hash, proof)))
                }
                Err(frame) => Ok(Err(frame)),
            })
            .collect()
    }

    /// Fetch a clue lineage proof and verify it against the trusted clue
    /// root from the client's newest verified block.
    pub fn prove_clue(&mut self, clue: &str) -> Result<ClueProof, RemoteError> {
        let proof = match self.call(&Request::GetClueProof(clue.to_string()))? {
            Response::ClueProof(proof) => proof,
            other => return Err(unexpected("ClueProof", &other)),
        };
        self.client.verify_clue(&proof).map_err(RemoteError::Verify)?;
        Ok(proof)
    }

    /// Fetch a journal and its payload (unverified convenience read;
    /// verify the payload digest against a proof for a distrusted read).
    pub fn get_tx(&mut self, jsn: u64) -> Result<(Journal, Option<Vec<u8>>), RemoteError> {
        match self.call(&Request::GetTx(jsn))? {
            Response::Tx { journal, payload } => Ok((journal, payload)),
            other => Err(unexpected("Tx", &other)),
        }
    }

    /// jsns the server records under a clue (claims; prove to verify).
    pub fn list_tx(&mut self, clue: &str) -> Result<Vec<u64>, RemoteError> {
        match self.call(&Request::ListTx(clue.to_string()))? {
            Response::TxList(jsns) => Ok(jsns),
            other => Err(unexpected("TxList", &other)),
        }
    }

    /// Fetch the server's telemetry snapshot (Prometheus-style text).
    /// Claims, not proofs — stats carry no signature; use them for
    /// operations, not verification.
    pub fn stats(&mut self) -> Result<String, RemoteError> {
        match self.call(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Ask the server to verify a proof on its side (§II-C manner 1 —
    /// useful for cross-checking, not a substitute for local checks).
    pub fn server_verify(
        &mut self,
        jsn: u64,
        tx_hash: Digest,
        proof: FamProof,
    ) -> Result<(), RemoteError> {
        let anchor = self.client.anchor();
        match self.call(&Request::Verify { jsn, tx_hash, proof, anchor })? {
            Response::Verified => Ok(()),
            other => Err(unexpected("Verified", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> RemoteError {
    RemoteError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
