//! [`RemoteLedger`]: the distrusting client end of the `ledgerd` wire.
//!
//! The transport is untrusted exactly like the LSP it fronts (§II-B
//! threat model): every byte that comes back is a *claim*. The remote
//! client therefore embeds a [`LedgerClient`] replica and
//!
//! * syncs by downloading sealed blocks over `GetBlockFeed` and
//!   replaying them through its own fam tree — a tampered feed is
//!   rejected at the first inconsistent block;
//! * requests existence proofs against **its own** anchor and verifies
//!   them against **its own** root ([`RemoteLedger::prove`] never
//!   returns an unverified proof);
//! * verifies receipts against the pinned LSP key and its own verified
//!   block-hash set.
//!
//! The LSP key and fam δ are learned from the `Hello` handshake —
//! trust-on-first-use. A deployment that distributes the LSP key
//! out-of-band should check [`RemoteLedger::info`] against the pinned
//! key after connecting.
//!
//! Transport resilience ([`RemoteConfig`]): every request runs under a
//! per-request deadline (connect, write, and read timeouts), so a
//! server that dies mid-request — or silently stops answering — yields
//! a typed [`RemoteError::Frame`] instead of a hang. A transport
//! failure poisons the connection (the stream offset is unknown after a
//! half-written request or half-read response); the next call redials
//! with bounded exponential backoff, re-runs the `Hello` handshake, and
//! refuses to proceed if the server's identity (ledger id, LSP key,
//! fam δ) changed across the reconnect. The embedded [`LedgerClient`]
//! replica — the verified chain — survives reconnects untouched.

use crate::protocol::{
    read_frame, write_frame, write_traced_frame, ErrorFrame, FrameError, ProofItem, Request,
    Response, ServerInfo, SpanRecord, TopologyInfo, DEFAULT_MAX_FRAME,
};
use ledgerdb_accumulator::fam::FamProof;
use ledgerdb_clue::cm_tree::ClueProof;
use ledgerdb_core::client::{LedgerClient, SyncReport};
use ledgerdb_core::{
    unpack_jsn, ComposedProof, Journal, LedgerError, Receipt, ShardedClient, StateProof, TxRequest,
};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::wire::{Wire, WireError};
use std::fmt;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum RemoteError {
    /// Transport/framing failure.
    Frame(FrameError),
    /// The server's bytes failed to decode.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server(ErrorFrame),
    /// The server answered with the wrong response kind.
    Protocol(String),
    /// Local verification rejected the server's claim.
    Verify(LedgerError),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Frame(e) => write!(f, "transport: {e}"),
            RemoteError::Wire(e) => write!(f, "undecodable response: {e}"),
            RemoteError::Server(e) => write!(f, "server error: {e}"),
            RemoteError::Protocol(what) => write!(f, "protocol violation: {what}"),
            RemoteError::Verify(e) => write!(f, "verification rejected server claim: {e}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<FrameError> for RemoteError {
    fn from(e: FrameError) -> Self {
        RemoteError::Frame(e)
    }
}

impl From<WireError> for RemoteError {
    fn from(e: WireError) -> Self {
        RemoteError::Wire(e)
    }
}

impl From<std::io::Error> for RemoteError {
    fn from(e: std::io::Error) -> Self {
        RemoteError::Frame(FrameError::Io(e))
    }
}

/// How many blocks one `GetBlockFeed` round trip asks for.
const SYNC_CHUNK: u64 = 256;

/// Transport-resilience knobs for [`RemoteLedger`].
#[derive(Clone, Debug)]
pub struct RemoteConfig {
    /// Per-request deadline: the socket connect, write, and read
    /// timeout. A request that exceeds it fails with a typed
    /// [`RemoteError::Frame`] — a call never hangs on a dead or silent
    /// server.
    pub request_timeout: Duration,
    /// Redial retries after a failed reconnect attempt before the call
    /// gives up (`0` fails on the first dial error). Reconnects happen
    /// lazily: a transport failure poisons the connection and the
    /// *next* call redials.
    pub max_reconnect_attempts: u32,
    /// Backoff before the first reconnect retry; doubles per attempt.
    pub backoff_initial: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            request_timeout: Duration::from_secs(30),
            max_reconnect_attempts: 3,
            backoff_initial: Duration::from_millis(25),
            backoff_max: Duration::from_secs(1),
        }
    }
}

/// The live transport: a writable stream plus its buffered read half
/// (one syscall per response frame instead of three).
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A connected, distrusting ledger client.
pub struct RemoteLedger {
    /// Resolved server addresses, kept for reconnects.
    addrs: Vec<SocketAddr>,
    config: RemoteConfig,
    /// `None` after a transport failure — the next call redials.
    conn: Option<Conn>,
    info: ServerInfo,
    client: LedgerClient,
    max_frame: u32,
    /// When on, every request ships in a version-2 traced frame with a
    /// client-minted trace id (kept in `last_trace_id`).
    tracing: bool,
    /// Trace id of the most recent traced call; `0` before the first.
    last_trace_id: u64,
    /// Per-shard distrusting replicas plus the client-grown anchor
    /// mirror; built lazily on the first [`RemoteLedger::sync_sharded`]
    /// from the server-reported shard count.
    sharded: Option<ShardedClient>,
}

impl RemoteLedger {
    /// Connect and handshake with the default [`RemoteConfig`]. The
    /// returned client trusts only what it verifies; the LSP key is
    /// trust-on-first-use from the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteLedger, RemoteError> {
        Self::connect_with(addr, RemoteConfig::default())
    }

    /// Connect and handshake with explicit deadline/backoff settings.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: RemoteConfig,
    ) -> Result<RemoteLedger, RemoteError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(RemoteError::from)?.collect();
        if addrs.is_empty() {
            return Err(RemoteError::Protocol("address resolved to nothing".into()));
        }
        // A `Busy` refusal (the server is over its connection cap right
        // now) is an explicit retry invitation, not a failure: back off
        // like a reconnect would. Anything else still fails fast.
        let mut backoff = config.backoff_initial;
        let mut attempt = 0u32;
        let (conn, info) = loop {
            match dial(&addrs, &config) {
                Ok(dialed) => break dialed,
                Err(RemoteError::Server(frame))
                    if frame.code == crate::protocol::ErrorCode::Busy
                        && attempt < config.max_reconnect_attempts =>
                {
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(config.backoff_max);
                }
                Err(e) => return Err(e),
            }
        };
        let client = LedgerClient::new(info.lsp_pk, info.fam_delta);
        Ok(RemoteLedger {
            addrs,
            config,
            conn: Some(conn),
            info,
            client,
            max_frame: DEFAULT_MAX_FRAME,
            tracing: false,
            last_trace_id: 0,
            sharded: None,
        })
    }

    /// The handshake identity (check against out-of-band pins).
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// The embedded distrusting replica.
    pub fn client(&self) -> &LedgerClient {
        &self.client
    }

    /// True while the transport is believed healthy (a failed call
    /// poisons it; the next call redials).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Toggle request tracing. While on, every call ships in a
    /// version-2 traced frame carrying a client-minted trace id, so the
    /// server's span tree for the request is retrievable afterwards via
    /// [`RemoteLedger::get_trace`] with [`RemoteLedger::last_trace_id`].
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Trace id the most recent traced call carried (`0` before any) —
    /// join client-observed latency to the server's stage breakdown.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// Fetch the server's retained span tree for `trace_id` (a
    /// [`RemoteLedger::last_trace_id`] value, or one lifted from a
    /// slow-op log line). Empty when the trace aged out unpinned.
    pub fn get_trace(&mut self, trace_id: u64) -> Result<Vec<SpanRecord>, RemoteError> {
        match self.call(&Request::GetTrace(trace_id))? {
            Response::Trace(spans) => Ok(spans),
            other => Err(unexpected("Trace", &other)),
        }
    }

    /// Redial with bounded exponential backoff and re-handshake. The
    /// new `Hello` must present the same ledger id, LSP key, and fam δ
    /// as the pinned first handshake — an impostor answering the
    /// reconnect is refused before any request reaches it.
    fn ensure_connected(&mut self) -> Result<(), RemoteError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut backoff = self.config.backoff_initial;
        let mut attempt = 0u32;
        loop {
            match dial(&self.addrs, &self.config) {
                Ok((conn, info)) => {
                    if info.ledger_id != self.info.ledger_id
                        || info.lsp_pk != self.info.lsp_pk
                        || info.fam_delta != self.info.fam_delta
                    {
                        return Err(RemoteError::Protocol(
                            "server identity changed across reconnect".into(),
                        ));
                    }
                    self.info = info;
                    self.conn = Some(conn);
                    return Ok(());
                }
                Err(e) => {
                    if attempt >= self.config.max_reconnect_attempts {
                        return Err(e);
                    }
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.config.backoff_max);
                }
            }
        }
    }

    /// One request/response round trip. Error frames become
    /// [`RemoteError::Server`]. A transport failure (timeout, reset,
    /// close) poisons the connection: the stream offset is unknown
    /// after a half-written request or half-read response, so the next
    /// call redials instead of misreading a stale frame.
    fn call(&mut self, request: &Request) -> Result<Response, RemoteError> {
        self.ensure_connected()?;
        // Mint the id before borrowing the connection: the id must be
        // known to the caller even if the transport fails mid-call.
        let trace_id = if self.tracing {
            let id = ledgerdb_telemetry::trace::TraceId::mint().0;
            self.last_trace_id = id;
            Some(id)
        } else {
            None
        };
        let conn = self.conn.as_mut().expect("ensure_connected just succeeded");
        let result = (|| {
            match trace_id {
                Some(id) => write_traced_frame(&mut conn.stream, id, &request.to_wire())?,
                None => write_frame(&mut conn.stream, &request.to_wire())?,
            }
            let body = read_frame(&mut conn.reader, self.max_frame)?;
            match Response::from_wire(&body)? {
                Response::Error(frame) => Err(RemoteError::Server(frame)),
                response => Ok(response),
            }
        })();
        if matches!(result, Err(RemoteError::Frame(_))) {
            self.conn = None;
        }
        result
    }

    /// Append; the ack means the payload is durable server-side.
    pub fn append(&mut self, request: TxRequest) -> Result<(u64, Digest), RemoteError> {
        match self.call(&Request::Append(request))? {
            Response::Appended { jsn, tx_hash } => Ok((jsn, tx_hash)),
            other => Err(unexpected("Appended", &other)),
        }
    }

    /// Append a whole batch in one frame: one round trip, one
    /// group-committed durability barrier server-side. Each element of
    /// the result is that request's durable ack or its typed rejection
    /// — order is positional, matching `requests`.
    pub fn append_batch(
        &mut self,
        requests: Vec<TxRequest>,
    ) -> Result<Vec<Result<(u64, Digest), ErrorFrame>>, RemoteError> {
        let n = requests.len();
        let results = match self.call(&Request::AppendBatch(requests))? {
            Response::AppendBatchResult(results) => results,
            other => return Err(unexpected("AppendBatchResult", &other)),
        };
        if results.len() != n {
            // A lying or truncating server answered the batch with the
            // wrong cardinality: positional attribution is impossible,
            // so the whole batch is refused with a typed frame error.
            // The frame itself was well-formed — the stream is still
            // synchronized — so the connection is *not* poisoned.
            return Err(RemoteError::Frame(FrameError::BatchLengthMismatch {
                sent: n as u64,
                got: results.len() as u64,
            }));
        }
        Ok(results
            .into_iter()
            .map(|result| result.map(|ack| (ack.jsn, ack.tx_hash)))
            .collect())
    }

    /// Append + seal; the receipt is *not* yet verified (its block must
    /// first be synced) — use [`RemoteLedger::append_committed_verified`]
    /// for the full distrusting round trip.
    pub fn append_committed(&mut self, request: TxRequest) -> Result<Receipt, RemoteError> {
        match self.call(&Request::AppendCommitted(request))? {
            Response::Committed(receipt) => Ok(receipt),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Append + seal, then sync the block feed and verify the receipt
    /// against the client's own verified chain before returning it.
    pub fn append_committed_verified(
        &mut self,
        request: TxRequest,
    ) -> Result<Receipt, RemoteError> {
        let receipt = self.append_committed(request)?;
        self.sync()?;
        self.client.verify_receipt(&receipt).map_err(RemoteError::Verify)?;
        Ok(receipt)
    }

    /// Download and verify new sealed blocks until the feed is drained.
    pub fn sync(&mut self) -> Result<SyncReport, RemoteError> {
        let mut total = SyncReport::default();
        loop {
            let request = Request::GetBlockFeed {
                from_height: self.client.height(),
                max_blocks: SYNC_CHUNK,
            };
            let blocks = match self.call(&request)? {
                Response::BlockFeed(blocks) => blocks,
                other => return Err(unexpected("BlockFeed", &other)),
            };
            let n = blocks.len() as u64;
            if n == 0 {
                return Ok(total);
            }
            let report = self.client.sync(&blocks).map_err(RemoteError::Verify)?;
            total.blocks_accepted += report.blocks_accepted;
            total.journals_replayed += report.journals_replayed;
            if n < SYNC_CHUNK {
                return Ok(total);
            }
        }
    }

    /// Fetch an existence proof for `jsn` against the client's **own**
    /// anchor and verify it against the client's own root before
    /// returning. An LSP that cannot prove the journal against the
    /// verified replica is caught here.
    pub fn prove(&mut self, jsn: u64) -> Result<(Digest, FamProof), RemoteError> {
        let anchor = self.client.anchor();
        let (tx_hash, proof) = match self.call(&Request::GetProof { jsn, anchor })? {
            Response::Proof { tx_hash, proof } => (tx_hash, proof),
            other => return Err(unexpected("Proof", &other)),
        };
        self.client
            .verify_existence(&tx_hash, &proof)
            .map_err(RemoteError::Verify)?;
        Ok((tx_hash, proof))
    }

    /// Fetch existence proofs for a batch of jsns in one frame, against
    /// the client's **own** anchor, and verify every returned proof
    /// against the client's own root before returning — a proof the
    /// server could forge or misattribute never leaves this method
    /// unverified. Per-item server rejections pass through positionally
    /// as `Err(ErrorFrame)`.
    pub fn prove_batch(
        &mut self,
        jsns: Vec<u64>,
    ) -> Result<Vec<Result<(Digest, FamProof), ErrorFrame>>, RemoteError> {
        let anchor = self.client.anchor();
        let n = jsns.len();
        let items = match self.call(&Request::GetProofBatch { jsns, anchor })? {
            Response::ProofBatch(items) => items,
            other => return Err(unexpected("ProofBatch", &other)),
        };
        if items.len() != n {
            // Same posture as `append_batch`: wrong cardinality makes
            // positional verification meaningless — refuse the batch
            // with a typed error rather than mis-attribute proofs.
            return Err(RemoteError::Frame(FrameError::BatchLengthMismatch {
                sent: n as u64,
                got: items.len() as u64,
            }));
        }
        items
            .into_iter()
            .map(|item| match item {
                Ok(ProofItem { tx_hash, proof }) => {
                    self.client
                        .verify_existence(&tx_hash, &proof)
                        .map_err(RemoteError::Verify)?;
                    Ok(Ok((tx_hash, proof)))
                }
                Err(frame) => Ok(Err(frame)),
            })
            .collect()
    }

    /// Fetch a clue lineage proof and verify it against the trusted clue
    /// root from the client's newest verified block.
    pub fn prove_clue(&mut self, clue: &str) -> Result<ClueProof, RemoteError> {
        let proof = match self.call(&Request::GetClueProof(clue.to_string()))? {
            Response::ClueProof(proof) => proof,
            other => return Err(unexpected("ClueProof", &other)),
        };
        self.client.verify_clue(&proof).map_err(RemoteError::Verify)?;
        Ok(proof)
    }

    /// Fetch a state-commitment proof for a clue — inclusion of its
    /// latest-payload digest, or verifiable absence — and verify it
    /// against the client's **own** trusted state root (from the newest
    /// verified block) before returning. Call [`RemoteLedger::sync`]
    /// first; a proof the server built against a newer root than the
    /// client has verified is rejected here, like any stale proof.
    /// Returns the proof plus the proven digest bytes (`None` =
    /// verified absence).
    pub fn prove_state(
        &mut self,
        clue: &str,
    ) -> Result<(StateProof, Option<Vec<u8>>), RemoteError> {
        let proof = match self.call(&Request::GetStateProof(clue.to_string()))? {
            Response::StateProof(proof) => proof,
            other => return Err(unexpected("StateProof", &other)),
        };
        let value = self
            .client
            .verify_state(&proof)
            .map_err(RemoteError::Verify)?
            .map(|v| v.to_vec());
        Ok((proof, value))
    }

    /// Fetch a journal and its payload (unverified convenience read;
    /// verify the payload digest against a proof for a distrusted read).
    pub fn get_tx(&mut self, jsn: u64) -> Result<(Journal, Option<Vec<u8>>), RemoteError> {
        match self.call(&Request::GetTx(jsn))? {
            Response::Tx { journal, payload } => Ok((journal, payload)),
            other => Err(unexpected("Tx", &other)),
        }
    }

    /// jsns the server records under a clue (claims; prove to verify).
    pub fn list_tx(&mut self, clue: &str) -> Result<Vec<u64>, RemoteError> {
        match self.call(&Request::ListTx(clue.to_string()))? {
            Response::TxList(jsns) => Ok(jsns),
            other => Err(unexpected("TxList", &other)),
        }
    }

    /// Fetch the server's telemetry snapshot (Prometheus-style text).
    /// Claims, not proofs — stats carry no signature; use them for
    /// operations, not verification.
    pub fn stats(&mut self) -> Result<String, RemoteError> {
        match self.call(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Ask the server to verify a proof on its side (§II-C manner 1 —
    /// useful for cross-checking, not a substitute for local checks).
    pub fn server_verify(
        &mut self,
        jsn: u64,
        tx_hash: Digest,
        proof: FamProof,
    ) -> Result<(), RemoteError> {
        let anchor = self.client.anchor();
        match self.call(&Request::Verify { jsn, tx_hash, proof, anchor })? {
            Response::Verified => Ok(()),
            other => Err(unexpected("Verified", &other)),
        }
    }

    /// The server's shard topology: shard count, epoch count, and its
    /// *claimed* top anchor root. Claims, not proofs — the top root is
    /// only trusted once [`RemoteLedger::sync_sharded`] re-derives it
    /// from verified per-shard chains.
    pub fn topology(&mut self) -> Result<TopologyInfo, RemoteError> {
        match self.call(&Request::GetTopology)? {
            Response::Topology(info) => Ok(info),
            other => Err(unexpected("Topology", &other)),
        }
    }

    /// The per-shard distrusting replicas, once built by
    /// [`RemoteLedger::sync_sharded`].
    pub fn sharded(&self) -> Option<&ShardedClient> {
        self.sharded.as_ref()
    }

    /// Sync every shard's block feed through its own verified replica,
    /// then mirror the server's epoch-anchor records — accepting only
    /// records whose roots match roots this client itself verified —
    /// and grow the client's own top anchor tree from them.
    pub fn sync_sharded(&mut self) -> Result<SyncReport, RemoteError> {
        let topo = self.topology()?;
        let k = topo.shards as usize;
        if self.sharded.as_ref().map(|s| s.k()) != Some(k) {
            if self.sharded.is_some() {
                return Err(RemoteError::Protocol(format!(
                    "server changed shard count across calls (had {}, now {k})",
                    self.sharded.as_ref().map(|s| s.k()).unwrap_or(0)
                )));
            }
            self.sharded = Some(
                ShardedClient::new(self.info.lsp_pk, self.info.fam_delta, k)
                    .map_err(RemoteError::Verify)?,
            );
        }
        let mut total = SyncReport::default();
        for shard in 0..k {
            loop {
                let from_height =
                    self.sharded.as_ref().expect("built above").height(shard);
                let request = Request::GetShardBlockFeed {
                    shard: shard as u32,
                    from_height,
                    max_blocks: SYNC_CHUNK,
                };
                let blocks = match self.call(&request)? {
                    Response::BlockFeed(blocks) => blocks,
                    other => return Err(unexpected("BlockFeed", &other)),
                };
                let n = blocks.len() as u64;
                if n == 0 {
                    break;
                }
                let report = self
                    .sharded
                    .as_mut()
                    .expect("built above")
                    .sync_shard(shard, &blocks)
                    .map_err(RemoteError::Verify)?;
                total.blocks_accepted += report.blocks_accepted;
                total.journals_replayed += report.journals_replayed;
                if n < SYNC_CHUNK {
                    break;
                }
            }
        }
        let from_epoch = self.sharded.as_ref().expect("built above").epoch_count();
        let records = match self.call(&Request::GetEpochAnchors { from_epoch })? {
            Response::EpochAnchors(records) => records,
            other => return Err(unexpected("EpochAnchors", &other)),
        };
        self.sharded
            .as_mut()
            .expect("built above")
            .ingest_epochs(&records)
            .map_err(RemoteError::Verify)?;
        Ok(total)
    }

    /// Fetch a composed proof for a global jsn — shard existence proof
    /// plus the anchor path placing that shard's sealed root in the
    /// top tree — and verify *both* layers against this client's own
    /// replicas and own top root before returning.
    pub fn prove_composed(&mut self, jsn: u64) -> Result<ComposedProof, RemoteError> {
        let sharded = self.sharded.as_ref().ok_or_else(|| {
            RemoteError::Protocol("call sync_sharded before prove_composed".into())
        })?;
        let (shard, _) = unpack_jsn(jsn, sharded.k());
        if shard >= sharded.k() {
            return Err(RemoteError::Verify(LedgerError::Shard(format!(
                "jsn {jsn} names unknown shard {shard}"
            ))));
        }
        let anchor = sharded.anchor(shard);
        let proof = match self.call(&Request::GetComposedProof { jsn, anchor })? {
            Response::Composed(proof) => proof,
            other => return Err(unexpected("Composed", &other)),
        };
        self.sharded
            .as_ref()
            .expect("checked above")
            .verify_composed(&proof)
            .map_err(RemoteError::Verify)?;
        Ok(proof)
    }
}

fn unexpected(wanted: &str, got: &Response) -> RemoteError {
    RemoteError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

/// Dial any of the resolved addresses under the per-request deadline
/// (connect, write, and read) and run the `Hello` handshake.
fn dial(addrs: &[SocketAddr], config: &RemoteConfig) -> Result<(Conn, ServerInfo), RemoteError> {
    let mut last: Option<std::io::Error> = None;
    let mut connected = None;
    for addr in addrs {
        match TcpStream::connect_timeout(addr, config.request_timeout) {
            Ok(stream) => {
                connected = Some(stream);
                break;
            }
            Err(e) => last = Some(e),
        }
    }
    let mut stream = match connected {
        Some(stream) => stream,
        None => {
            return Err(last
                .map(RemoteError::from)
                .unwrap_or_else(|| RemoteError::Protocol("no address to dial".into())))
        }
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(config.request_timeout)).map_err(RemoteError::from)?;
    stream.set_write_timeout(Some(config.request_timeout)).map_err(RemoteError::from)?;
    write_frame(&mut stream, &Request::Hello.to_wire())?;
    let body = read_frame(&mut stream, DEFAULT_MAX_FRAME)?;
    let info = match Response::from_wire(&body)? {
        Response::Hello(info) => info,
        Response::Error(frame) => return Err(RemoteError::Server(frame)),
        other => return Err(unexpected("Hello", &other)),
    };
    let reader = BufReader::with_capacity(16 * 1024, stream.try_clone().map_err(RemoteError::from)?);
    Ok((Conn { stream, reader }, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Ledgerd, ServerConfig};
    use crate::testutil::shared;
    use ledgerdb_core::TxRequest;
    use std::net::{Shutdown, TcpListener};
    use std::sync::{Arc, Mutex};
    use std::thread;
    use std::time::Instant;

    fn fast_config() -> RemoteConfig {
        RemoteConfig {
            request_timeout: Duration::from_secs(5),
            max_reconnect_attempts: 5,
            backoff_initial: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
        }
    }

    /// A byte-level TCP relay in front of the real server. Severing its
    /// live connections is, from the client's point of view, exactly a
    /// server crash mid-request — but the listening socket survives, so
    /// the reconnect path is not at the mercy of TIME_WAIT rebinding.
    struct Proxy {
        addr: SocketAddr,
        upstream: Arc<Mutex<SocketAddr>>,
        live: Arc<Mutex<Vec<TcpStream>>>,
    }

    impl Proxy {
        fn start(upstream_addr: SocketAddr) -> Proxy {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let upstream = Arc::new(Mutex::new(upstream_addr));
            let live: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            let (upstream_for_loop, live_for_loop) = (upstream.clone(), live.clone());
            thread::spawn(move || {
                for stream in listener.incoming() {
                    let Ok(client) = stream else { return };
                    let target = *upstream_for_loop.lock().unwrap();
                    let Ok(server) = TcpStream::connect(target) else { continue };
                    client.set_nodelay(true).ok();
                    server.set_nodelay(true).ok();
                    {
                        let mut live = live_for_loop.lock().unwrap();
                        live.push(client.try_clone().unwrap());
                        live.push(server.try_clone().unwrap());
                    }
                    let (mut cr, mut sw) = (client.try_clone().unwrap(), server.try_clone().unwrap());
                    thread::spawn(move || {
                        let _ = std::io::copy(&mut cr, &mut sw);
                        let _ = sw.shutdown(Shutdown::Both);
                    });
                    let (mut sr, mut cw) = (server, client);
                    thread::spawn(move || {
                        let _ = std::io::copy(&mut sr, &mut cw);
                        let _ = cw.shutdown(Shutdown::Both);
                    });
                }
            });
            Proxy { addr, upstream, live }
        }

        /// Sever every live relay — the wire view of a server crash.
        fn kill_connections(&self) {
            for stream in self.live.lock().unwrap().drain(..) {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }

        /// Point future connections at a different server (the wire view
        /// of a restart that came back as somebody else).
        fn retarget(&self, addr: SocketAddr) {
            *self.upstream.lock().unwrap() = addr;
        }
    }

    fn tx(alice: &ledgerdb_crypto::keys::KeyPair, nonce: u64) -> TxRequest {
        TxRequest::signed(alice, format!("r-{nonce}").into_bytes(), vec![], nonce)
    }

    #[test]
    fn mid_request_server_death_is_typed_and_the_retry_succeeds() {
        let (shared, alice) = shared(4);
        let server = Ledgerd::start(shared, ServerConfig::default()).unwrap();
        let proxy = Proxy::start(server.local_addr());

        let mut remote = RemoteLedger::connect_with(proxy.addr, fast_config()).unwrap();
        let (jsn, _) = remote.append(tx(&alice, 0)).unwrap();
        assert_eq!(jsn, 0);

        // The "server" dies between the ack and the next request.
        proxy.kill_connections();
        let start = Instant::now();
        let err = remote.append(tx(&alice, 1)).unwrap_err();
        assert!(
            matches!(err, RemoteError::Frame(_)),
            "a severed transport must surface as a typed frame error, got: {err}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the failure must be prompt, not a hang"
        );
        assert!(!remote.is_connected(), "the poisoned connection is dropped");

        // The caller retries: the client redials through the proxy,
        // re-handshakes against the same pinned identity, and the
        // request lands. The verified replica survived the reconnect.
        let (jsn, _) = remote.append(tx(&alice, 1)).unwrap();
        assert_eq!(jsn, 1);
        remote.sync().unwrap();
        assert!(remote.is_connected());
        server.shutdown();
    }

    #[test]
    fn silent_server_trips_the_request_deadline() {
        // A stub that completes the handshake, then swallows the next
        // request and never answers — the pathological hang case.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let lsp = ledgerdb_crypto::keys::KeyPair::from_seed(b"silent-stub");
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                let lsp_pk = *lsp.public();
                thread::spawn(move || {
                    if read_frame(&mut stream, DEFAULT_MAX_FRAME).is_err() {
                        return;
                    }
                    let info = ServerInfo {
                        protocol_version: crate::protocol::PROTOCOL_VERSION,
                        ledger_id: ledgerdb_crypto::sha256(b"silent-ledger"),
                        lsp_pk,
                        fam_delta: 15,
                        journal_count: 0,
                        block_count: 0,
                    };
                    let _ = write_frame(&mut stream, &Response::Hello(info).to_wire());
                    // Read the request, answer nothing, hold the socket.
                    let _ = read_frame(&mut stream, DEFAULT_MAX_FRAME);
                    thread::sleep(Duration::from_secs(30));
                });
            }
        });

        let config = RemoteConfig {
            request_timeout: Duration::from_millis(250),
            max_reconnect_attempts: 0,
            ..fast_config()
        };
        let mut remote = RemoteLedger::connect_with(addr, config).unwrap();
        let start = Instant::now();
        let err = remote.stats().unwrap_err();
        match &err {
            RemoteError::Frame(frame) => {
                assert!(frame.is_timeout(), "expected a deadline trip, got: {frame}")
            }
            other => panic!("expected a typed frame error, got: {other}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "the deadline bounds the wait: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn lying_batch_cardinality_is_a_typed_length_mismatch() {
        // A stub that completes the handshake, then answers every batch
        // with the wrong number of results: short (empty) for the first
        // request, over-long for the second. Either way the client must
        // refuse the whole batch with a typed error — positional
        // attribution against a lying server is meaningless.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let lsp = ledgerdb_crypto::keys::KeyPair::from_seed(b"lying-stub");
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                let lsp_pk = *lsp.public();
                thread::spawn(move || {
                    if read_frame(&mut stream, DEFAULT_MAX_FRAME).is_err() {
                        return;
                    }
                    let info = ServerInfo {
                        protocol_version: crate::protocol::PROTOCOL_VERSION,
                        ledger_id: ledgerdb_crypto::sha256(b"lying-ledger"),
                        lsp_pk,
                        fam_delta: 15,
                        journal_count: 0,
                        block_count: 0,
                    };
                    let _ = write_frame(&mut stream, &Response::Hello(info).to_wire());
                    // First batch: answer short (no results at all).
                    if read_frame(&mut stream, DEFAULT_MAX_FRAME).is_err() {
                        return;
                    }
                    let short = Response::AppendBatchResult(Vec::new());
                    let _ = write_frame(&mut stream, &short.to_wire());
                    // Second batch: answer over-long (three rejections
                    // for a single asked-for proof).
                    if read_frame(&mut stream, DEFAULT_MAX_FRAME).is_err() {
                        return;
                    }
                    let reject = || ErrorFrame {
                        code: crate::protocol::ErrorCode::NotFound,
                        detail: "fabricated".into(),
                    };
                    let long = Response::ProofBatch(vec![
                        Err(reject()),
                        Err(reject()),
                        Err(reject()),
                    ]);
                    let _ = write_frame(&mut stream, &long.to_wire());
                    // Hold the socket open so poisoning is observable.
                    thread::sleep(Duration::from_secs(5));
                });
            }
        });

        let alice = ledgerdb_crypto::keys::KeyPair::from_seed(b"lying-alice");
        let mut remote = RemoteLedger::connect_with(addr, fast_config()).unwrap();

        let err = remote.append_batch(vec![tx(&alice, 0), tx(&alice, 1)]).unwrap_err();
        match &err {
            RemoteError::Frame(FrameError::BatchLengthMismatch { sent, got }) => {
                assert_eq!((*sent, *got), (2, 0));
            }
            other => panic!("short batch reply must be a typed length mismatch, got: {other}"),
        }
        assert!(
            remote.is_connected(),
            "a well-framed lying reply leaves the stream synchronized; no redial needed"
        );

        let err = remote.prove_batch(vec![7]).unwrap_err();
        match &err {
            RemoteError::Frame(FrameError::BatchLengthMismatch { sent, got }) => {
                assert_eq!((*sent, *got), (1, 3));
            }
            other => panic!("over-long batch reply must be a typed length mismatch, got: {other}"),
        }
        assert!(remote.is_connected());
    }

    #[test]
    fn sharded_server_composed_proofs_verify_end_to_end() {
        let (sharded, alice) = crate::testutil::sharded(4, 1);
        let server = Ledgerd::start_sharded(sharded, ServerConfig::default()).unwrap();
        let mut remote = RemoteLedger::connect_with(server.local_addr(), fast_config()).unwrap();

        assert_eq!(remote.topology().unwrap().shards, 4);

        // Clue-spread appends land on different shards; block_size 1
        // seals each immediately, so every journal is anchorable.
        let mut jsns = Vec::new();
        for i in 0..12u64 {
            let tx = TxRequest::signed(
                &alice,
                format!("shard-payload-{i}").into_bytes(),
                vec![format!("clue-{i}")],
                i,
            );
            let (jsn, _) = remote.append(tx).unwrap();
            jsns.push(jsn);
        }

        remote.sync_sharded().unwrap();
        let own_top = remote.sharded().unwrap().top_root();
        assert_eq!(
            remote.topology().unwrap().top_root,
            own_top,
            "client-derived top root must match the server's"
        );

        for jsn in jsns {
            let proof = remote.prove_composed(jsn).unwrap();
            assert_eq!(proof.shard as u64, jsn >> 56, "shard id rides in the jsn high byte");
        }
        server.shutdown();
    }

    #[test]
    fn reconnect_backoff_is_bounded_when_the_server_stays_down() {
        let (shared, _) = shared(4);
        let server = Ledgerd::start(shared, ServerConfig::default()).unwrap();
        let config = RemoteConfig {
            request_timeout: Duration::from_millis(500),
            max_reconnect_attempts: 2,
            backoff_initial: Duration::from_millis(5),
            backoff_max: Duration::from_millis(20),
        };
        let mut remote = RemoteLedger::connect_with(server.local_addr(), config).unwrap();
        server.shutdown();
        drop(server);

        // First call after the crash: the live socket is dead.
        let err = remote.stats().unwrap_err();
        assert!(matches!(err, RemoteError::Frame(_)), "got: {err}");
        // Second call: redial, 1 + max_reconnect_attempts dials against
        // a closed port, then a typed error — bounded, not forever.
        let start = Instant::now();
        let err = remote.stats().unwrap_err();
        assert!(matches!(err, RemoteError::Frame(_)), "got: {err}");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "bounded backoff must give up promptly: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn reconnect_refuses_a_server_with_a_different_identity() {
        let (shared_a, alice) = shared(4);
        let server_a = Ledgerd::start(shared_a, ServerConfig::default()).unwrap();
        // A second, unrelated ledger (fresh keys, different id).
        let (shared_b, _) = {
            let ca = ledgerdb_crypto::ca::CertificateAuthority::from_seed(b"imposter-ca");
            let alice = ledgerdb_crypto::keys::KeyPair::from_seed(b"imposter-alice");
            let mut registry = ledgerdb_core::MemberRegistry::new(*ca.public_key());
            registry
                .register(ca.issue("alice", ledgerdb_crypto::ca::Role::User, alice.public()))
                .unwrap();
            let config = ledgerdb_core::LedgerConfig {
                block_size: 4,
                fam_delta: 15,
                name: "imposter".into(),
                state_backend: Default::default(),
            };
            (
                ledgerdb_core::SharedLedger::new(ledgerdb_core::LedgerDb::new(config, registry)),
                alice,
            )
        };
        let server_b = Ledgerd::start(shared_b, ServerConfig::default()).unwrap();

        let proxy = Proxy::start(server_a.local_addr());
        let mut remote = RemoteLedger::connect_with(proxy.addr, fast_config()).unwrap();
        remote.append(tx(&alice, 0)).unwrap();

        // The "restart" comes back as a different ledger entirely.
        proxy.retarget(server_b.local_addr());
        proxy.kill_connections();
        let err = remote.append(tx(&alice, 1)).unwrap_err();
        assert!(matches!(err, RemoteError::Frame(_)), "got: {err}");
        let err = remote.append(tx(&alice, 1)).unwrap_err();
        match err {
            RemoteError::Protocol(what) => {
                assert!(what.contains("identity"), "wrong protocol error: {what}")
            }
            other => panic!("an impostor must be refused at the handshake, got: {other}"),
        }
        server_a.shutdown();
        server_b.shutdown();
    }
}
