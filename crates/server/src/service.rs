//! Transport-independent request handling.
//!
//! [`RequestService`] is everything `ledgerd` does *between* decoding a
//! [`Request`] and encoding a [`Response`]: admission, group commit,
//! snapshot reads, sticky-durability polling, per-kind telemetry, and
//! the drain protocol. Both transports — the thread-per-connection
//! server ([`crate::server`]) and the epoll event loop
//! ([`crate::event_server`]) — call the same [`RequestService::handle`],
//! which is what makes their responses byte-identical by construction:
//! the differential suite asserts it, but the sharing is the proof.

use crate::batcher::{Admission, CommitOutcome, GroupCommitter};
use crate::metrics::{kind_index, ServerMetrics, REQUEST_KINDS};
use crate::protocol::{
    AppendedAck, ErrorCode, ErrorFrame, ProofItem, Request, Response, ServerInfo, SpanRecord,
    TopologyInfo, PROTOCOL_VERSION,
};
use crate::server::ServerConfig;
use ledgerdb_accumulator::fam::TrustedAnchor;
use ledgerdb_core::{ShardedLedger, SharedLedger, TxRequest, VerifyLevel};
use ledgerdb_telemetry::trace::{self, StageSpan, TraceContext, TraceId, TraceScope};
use ledgerdb_telemetry::{recorder, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Static span names tagging which shard a routed request landed on
/// (flight-recorder names must be `'static`). Shards past the table
/// share the last tag — the structural concurrency assertion only needs
/// *distinct* tags for the shards under test.
const SHARD_STAGES: [&str; 8] = [
    "shard-0", "shard-1", "shard-2", "shard-3", "shard-4", "shard-5", "shard-6", "shard-7",
];

fn shard_stage(shard: usize) -> &'static str {
    SHARD_STAGES[shard.min(SHARD_STAGES.len() - 1)]
}

/// The shared request-handling core of a running server.
pub struct RequestService {
    /// Shard 0 — on a K=1 deployment this *is* the ledger, and every
    /// pre-sharding path (HTTP handlers, Hello, the block feed) reads
    /// it exactly as before.
    pub shared: SharedLedger,
    sharded: ShardedLedger,
    /// One group committer per shard (all `None` without a batch
    /// config): per-shard durability barriers are what lets K shards
    /// commit concurrently instead of serializing on one WAL.
    committers: Vec<Option<GroupCommitter>>,
    admission: Admission,
    pool: Option<Arc<ledgerdb_pool::Pool>>,
    registry: Arc<Registry>,
    pub metrics: ServerMetrics,
    shutdown: AtomicBool,
}

impl RequestService {
    /// Wire a ledger to a config: snapshot reads, the compute pool, the
    /// group committer, and metric handles — exactly once, regardless of
    /// which transport will drive requests.
    pub fn start(shared: SharedLedger, config: &ServerConfig) -> RequestService {
        Self::start_sharded(ShardedLedger::single(shared), config)
    }

    /// As [`RequestService::start`], over K shard ledgers. Routing
    /// lives entirely in this service, so both transports (threaded and
    /// event loop) inherit sharding verbatim. K=1 is byte-identical to
    /// the unsharded service: shard routing degenerates to shard 0 and
    /// jsn packing to the identity.
    pub fn start_sharded(sharded: ShardedLedger, config: &ServerConfig) -> RequestService {
        let mut committers = Vec::with_capacity(sharded.k());
        for shard in sharded.shards() {
            shard.set_snapshot_reads(config.snapshot_reads);
            // Wire the compute pool all the way down: the ledger uses it
            // to hash seal subtrees in parallel, the committer to
            // pipeline batch admission off the write lock.
            shard.set_pool(config.pool.clone());
            committers.push(config.batch.map(|batch| {
                GroupCommitter::start_with_pool(
                    shard.clone(),
                    batch,
                    config.admission,
                    &config.registry,
                    config.pool.clone(),
                )
            }));
        }
        let metrics = ServerMetrics::bind(&config.registry);
        RequestService {
            shared: sharded.shard(0).clone(),
            sharded,
            committers,
            admission: config.admission,
            pool: config.pool.clone(),
            registry: config.registry.clone(),
            metrics,
            shutdown: AtomicBool::new(false),
        }
    }

    fn k(&self) -> usize {
        self.sharded.k()
    }

    /// The shard topology this service routes over.
    pub fn sharded(&self) -> &ShardedLedger {
        &self.sharded
    }

    /// The registry this service exposes on `Stats` and `/metrics`.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// True once a drain has begun; transports poll this at frame
    /// boundaries to stop taking new work.
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flip into drain mode. Returns true for the caller that flipped it
    /// (shutdown is idempotent; only the first caller runs
    /// [`RequestService::finish_drain`]'s checkpoint).
    pub fn begin_drain(&self) -> bool {
        !self.shutdown.swap(true, Ordering::SeqCst)
    }

    /// Final drain steps, after the transport has stopped feeding
    /// requests: flush the commit queue, then — with a checkpoint policy
    /// enabled — flush the sealed prefix into a final checkpoint so the
    /// next start replays only the unsealed tail.
    pub fn finish_drain(&self, first: bool) {
        for committer in self.committers.iter().flatten() {
            committer.shutdown();
        }
        // A checkpoint already in flight (an auto-seal fired one) holds
        // the ledger write lock, so this call waits for it to complete
        // rather than abandoning it mid-ladder. A write failure lands
        // on the sticky `ledger_durability_error` gauge instead of
        // aborting the drain — the WAL already holds everything.
        if first {
            for shard in self.sharded.shards() {
                if shard.checkpoints_enabled() {
                    shard.checkpoint_on_drain();
                }
            }
        }
    }

    /// Serve one decoded request, recording its per-kind count and
    /// latency. Every transport funnels through here.
    pub fn handle(&self, request: Request) -> Response {
        self.handle_traced(request, None)
    }

    /// [`RequestService::handle`] with an optional client-supplied trace
    /// id from a version-2 frame envelope. Every request gets a root
    /// span (named after its wire kind) whether or not the client asked
    /// for tracing: slow or error-terminated requests are pinned in the
    /// flight recorder either way, and server-minted ids surface on
    /// `/trace/slow` and in the slow-op log line.
    pub fn handle_traced(&self, request: Request, wire_trace: Option<u64>) -> Response {
        let per_kind = self.metrics.request(&request);
        let kind = REQUEST_KINDS[kind_index(&request)];
        let trace_id = match wire_trace {
            Some(raw) => TraceId::from_wire(raw),
            None => TraceId::mint(),
        };
        let root = TraceContext::root(trace_id);
        let start = Instant::now();
        let start_ns = trace::now_ns();
        let response = {
            let _scope = trace::install(TraceScope::Single(root));
            self.dispatch(request)
        };
        recorder::finish_root(root, kind, start_ns, matches!(response, Response::Error(_)));
        per_kind.count.inc();
        per_kind.seconds.observe_duration(start.elapsed());
        response
    }

    fn dispatch(&self, request: Request) -> Response {
        if self.draining() {
            if let Request::Append(_) | Request::AppendCommitted(_) | Request::AppendBatch(_) =
                request
            {
                return Response::Error(ErrorFrame {
                    code: ErrorCode::ShuttingDown,
                    detail: "server is draining".into(),
                });
            }
        }
        match request {
            Request::Hello => Response::Hello(ServerInfo {
                protocol_version: PROTOCOL_VERSION,
                ledger_id: self.shared.id(),
                lsp_pk: self.shared.lsp_public_key(),
                fam_delta: self.shared.fam_delta(),
                journal_count: self.shared.journal_count(),
                block_count: self.shared.block_count(),
            }),
            Request::Append(tx) => self.handle_append(tx, false),
            Request::AppendCommitted(tx) => self.handle_append(tx, true),
            Request::GetTx(jsn) => self.route_jsn(jsn, |shard, local| {
                match shard.get_tx(local) {
                    Ok((journal, payload)) => Response::Tx { journal, payload },
                    Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                }
            }),
            Request::ListTx(clue) => {
                let shard_id = self.sharded.route_clue(&clue);
                let _tag = self.shard_span(shard_id);
                let jsns = self.sharded.shard(shard_id).list_tx(&clue);
                Response::TxList(jsns.into_iter().map(|j| self.sharded.pack(shard_id, j)).collect())
            }
            Request::GetProof { jsn, anchor } => self.route_jsn(jsn, |shard, local| {
                match shard.prove_existence(local, &anchor) {
                    Ok((tx_hash, proof)) => Response::Proof { tx_hash, proof },
                    Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                }
            }),
            Request::GetClueProof(clue) => {
                let shard_id = self.sharded.route_clue(&clue);
                let _tag = self.shard_span(shard_id);
                match self.sharded.shard(shard_id).prove_clue(&clue) {
                    Ok(proof) => Response::ClueProof(proof),
                    Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                }
            }
            Request::Verify { jsn, tx_hash, proof, anchor } => {
                self.route_jsn(jsn, |shard, local| {
                    match shard
                        .verify_existence(local, &tx_hash, &proof, &anchor, VerifyLevel::Server)
                    {
                        Ok(()) => Response::Verified,
                        Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                    }
                })
            }
            Request::GetAnchor => Response::Anchor(self.shared.anchor()),
            Request::GetBlockFeed { from_height, max_blocks } => {
                Response::BlockFeed(self.shared.blocks_from(from_height, max_blocks))
            }
            Request::Stats => Response::Stats(ledgerdb_telemetry::render(&self.registry)),
            Request::AppendBatch(requests) => self.handle_append_batch(requests),
            Request::GetProofBatch { jsns, anchor } => self.handle_proof_batch(jsns, anchor),
            Request::GetTrace(id) => Response::Trace(
                recorder::events_for(id)
                    .into_iter()
                    .map(|e| SpanRecord {
                        span: e.span,
                        parent: e.parent,
                        name: recorder::name_of(e.name_id).to_string(),
                        start_ns: e.start_ns,
                        end_ns: e.end_ns,
                    })
                    .collect(),
            ),
            Request::GetTopology => Response::Topology(TopologyInfo {
                shards: self.k() as u32,
                epochs: self.sharded.epoch_count(),
                top_root: self.sharded.top_root(),
            }),
            Request::GetShardBlockFeed { shard, from_height, max_blocks } => {
                match self.sharded.check_shard(shard as usize) {
                    Ok(()) => Response::BlockFeed(
                        self.sharded.shard(shard as usize).blocks_from(from_height, max_blocks),
                    ),
                    Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                }
            }
            Request::GetEpochAnchors { from_epoch } => {
                // Cut a fresh epoch if any shard sealed since the last
                // one, so the records a syncing client mirrors always
                // cover the chains it just downloaded.
                self.sharded.ensure_epoch();
                Response::EpochAnchors(self.sharded.epochs_from(from_epoch))
            }
            Request::GetComposedProof { jsn, anchor } => {
                let tag = self.sharded.unpack(jsn).ok().map(|(s, _)| self.shard_span(s));
                let response = match self.sharded.prove_composed(jsn, &anchor) {
                    Ok(proof) => Response::Composed(proof),
                    Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                };
                drop(tag);
                response
            }
            Request::GetStateProof(clue) => {
                // Routed like any clue query; the proof (inclusion or
                // verifiable absence) is checked client-side against
                // the caller's own synced state root.
                let shard_id = self.sharded.route_clue(&clue);
                let _tag = self.shard_span(shard_id);
                Response::StateProof(self.sharded.shard(shard_id).prove_state(&clue))
            }
        }
    }

    /// Tag the current span tree with the shard a request routed to —
    /// only on a sharded deployment, so K=1 trace output is unchanged.
    /// These tags are what lets the flight recorder show per-shard lock
    /// windows overlapping (the structural multi-core assertion).
    fn shard_span(&self, shard: usize) -> Option<StageSpan> {
        (self.k() > 1).then(|| StageSpan::begin(shard_stage(shard)))
    }

    /// Split a global jsn, run `f` on its shard with the local jsn, and
    /// tag the span tree with the shard. On K=1 the split is the
    /// identity and never fails — responses are byte-identical to the
    /// unsharded service.
    fn route_jsn(
        &self,
        jsn: u64,
        f: impl FnOnce(&SharedLedger, u64) -> Response,
    ) -> Response {
        match self.sharded.unpack(jsn) {
            Ok((shard, local)) => {
                let _tag = self.shard_span(shard);
                f(self.sharded.shard(shard), local)
            }
            Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
        }
    }

    /// One-frame group commit: the client pre-batched, so the
    /// committer's accumulation window buys nothing — the batch goes
    /// straight through the batched ledger entry points. With a compute
    /// pool configured, admission (membership + π_c) and journal digests
    /// fan out across the pool *before* the write lock; without one, the
    /// serial batched path runs — byte-identical results either way.
    fn handle_append_batch(&self, requests: Vec<TxRequest>) -> Response {
        let proxy = self.admission == Admission::ProxyTrusted;
        let admission = if proxy {
            &self.metrics.admission_proxy
        } else {
            &self.metrics.admission_verify
        };
        admission.add(requests.len() as u64);
        // A pre-batched frame skips the group committer, so its "queue
        // wait" is just this dispatch prologue — recorded anyway so the
        // AppendBatch span tree has the same stage skeleton as the
        // committer path and the ordering assertion (queue before lock)
        // holds for both.
        let queue_wait = StageSpan::begin("batch_queue_wait");
        drop(queue_wait);
        if self.k() > 1 {
            return self.handle_append_batch_sharded(requests, proxy);
        }
        let results = match (&self.pool, proxy) {
            (Some(pool), false) => self.shared.append_batch_pipelined(requests, pool),
            (Some(pool), true) => self.shared.append_batch_preverified_pipelined(requests, pool),
            (None, false) => self.shared.append_batch(requests),
            (None, true) => self.shared.append_batch_preverified(requests),
        };
        let results = match results {
            Ok(results) => results,
            Err(e) => return Response::Error(ErrorFrame::from_ledger_error(&e)),
        };
        // Same sticky-durability discipline as single appends: an
        // auto-seal WAL failure surfaces on the request that triggered
        // it.
        if let Some(e) = self.shared.take_durability_error() {
            return Response::Error(ErrorFrame::from_ledger_error(&e));
        }
        Response::AppendBatchResult(
            results
                .into_iter()
                .map(|result| {
                    result
                        .map(|ack| AppendedAck { jsn: ack.jsn, tx_hash: ack.tx_hash })
                        .map_err(|e| ErrorFrame::from_ledger_error(&e))
                })
                .collect(),
        )
    }

    /// The K>1 batch path: scatter the frame's requests to their shards
    /// (preserving per-shard arrival order, which fixes each shard's jsn
    /// assignment), run each shard's sub-batch through the same pipelined
    /// entry points, and gather the acks back into request order with
    /// packed global jsns. Positionality is preserved exactly as on K=1.
    fn handle_append_batch_sharded(&self, requests: Vec<TxRequest>, proxy: bool) -> Response {
        let n = requests.len();
        let mut by_shard: Vec<Vec<TxRequest>> = (0..self.k()).map(|_| Vec::new()).collect();
        let mut origin: Vec<(usize, usize)> = Vec::with_capacity(n);
        for tx in requests {
            let shard_id = self.sharded.route(&tx);
            origin.push((shard_id, by_shard[shard_id].len()));
            by_shard[shard_id].push(tx);
        }
        let mut per_shard: Vec<Vec<Result<AppendedAck, ErrorFrame>>> = Vec::with_capacity(self.k());
        for (shard_id, batch) in by_shard.into_iter().enumerate() {
            if batch.is_empty() {
                per_shard.push(Vec::new());
                continue;
            }
            let _tag = self.shard_span(shard_id);
            let shard = self.sharded.shard(shard_id);
            let results = match (&self.pool, proxy) {
                (Some(pool), false) => shard.append_batch_pipelined(batch, pool),
                (Some(pool), true) => shard.append_batch_preverified_pipelined(batch, pool),
                (None, false) => shard.append_batch(batch),
                (None, true) => shard.append_batch_preverified(batch),
            };
            let results = match results {
                Ok(results) => results,
                Err(e) => return Response::Error(ErrorFrame::from_ledger_error(&e)),
            };
            if let Some(e) = shard.take_durability_error() {
                return Response::Error(ErrorFrame::from_ledger_error(&e));
            }
            per_shard.push(
                results
                    .into_iter()
                    .map(|result| {
                        result
                            .map(|ack| AppendedAck {
                                jsn: self.sharded.pack(shard_id, ack.jsn),
                                tx_hash: ack.tx_hash,
                            })
                            .map_err(|e| ErrorFrame::from_ledger_error(&e))
                    })
                    .collect(),
            );
        }
        Response::AppendBatchResult(
            origin
                .into_iter()
                .map(|(shard_id, slot)| per_shard[shard_id][slot].clone())
                .collect(),
        )
    }

    /// Batch existence proofs. Snapshot and lock resolution are
    /// *hoisted* out of the per-item closure (see
    /// [`SharedLedger::prove_existence_batch`]): a batch fully covered
    /// by the published [`ReadSnapshot`](ledgerdb_core::ReadSnapshot)
    /// is served lock-free — fanned out across the compute pool when
    /// one is configured — and anything else proves under a *single*
    /// read-lock acquisition instead of one per item.
    fn handle_proof_batch(&self, jsns: Vec<u64>, anchor: TrustedAnchor) -> Response {
        let pool = self.pool.as_deref();
        let item = |result: Result<(ledgerdb_crypto::digest::Digest, _), _>| {
            result
                .map(|(tx_hash, proof)| ProofItem { tx_hash, proof })
                .map_err(|e| ErrorFrame::from_ledger_error(&e))
        };
        if self.k() > 1 {
            // A batch may mix shards (the caller's anchor can only
            // match one — mismatches fail per item, positionally, like
            // any stale-anchor proof). Unpack once, group the locals
            // per shard, prove each shard's sub-batch with hoisted
            // resolution, and scatter results back into request order.
            let mut by_shard: Vec<Vec<u64>> = (0..self.k()).map(|_| Vec::new()).collect();
            let mut origin: Vec<Result<(usize, usize), ErrorFrame>> =
                Vec::with_capacity(jsns.len());
            for &jsn in &jsns {
                match self.sharded.unpack(jsn) {
                    Ok((shard, local)) => {
                        origin.push(Ok((shard, by_shard[shard].len())));
                        by_shard[shard].push(local);
                    }
                    Err(e) => origin.push(Err(ErrorFrame::from_ledger_error(&e))),
                }
            }
            let mut per_shard: Vec<Vec<Option<_>>> = by_shard
                .iter()
                .enumerate()
                .map(|(shard_id, locals)| {
                    if locals.is_empty() {
                        return Vec::new();
                    }
                    let _tag = self.shard_span(shard_id);
                    self.sharded
                        .shard(shard_id)
                        .prove_existence_batch(locals, &anchor, pool)
                        .into_iter()
                        .map(Some)
                        .collect()
                })
                .collect();
            return Response::ProofBatch(
                origin
                    .into_iter()
                    .map(|slot| match slot {
                        Ok((shard, idx)) => {
                            item(per_shard[shard][idx].take().expect("each slot consumed once"))
                        }
                        Err(e) => Err(e),
                    })
                    .collect(),
            );
        }
        Response::ProofBatch(
            self.shared
                .prove_existence_batch(&jsns, &anchor, pool)
                .into_iter()
                .map(item)
                .collect(),
        )
    }

    fn handle_append(&self, tx: TxRequest, committed: bool) -> Response {
        match self.admission {
            Admission::Verify => self.metrics.admission_verify.inc(),
            Admission::ProxyTrusted => self.metrics.admission_proxy.inc(),
        }
        // Stable clue/member routing: on K=1 this is always shard 0 and
        // the packing below is the identity — the unsharded byte path.
        let shard_id = self.sharded.route(&tx);
        let _tag = self.shard_span(shard_id);
        let shard = self.sharded.shard(shard_id);
        let response = match &self.committers[shard_id] {
            Some(committer) => match committer.submit(tx, committed) {
                Ok(CommitOutcome::Appended { jsn, tx_hash }) => {
                    Response::Appended { jsn: self.sharded.pack(shard_id, jsn), tx_hash }
                }
                Ok(CommitOutcome::Committed(receipt)) => Response::Committed(receipt),
                Err(frame) => Response::Error(frame),
            },
            None => {
                let proxy = self.admission == Admission::ProxyTrusted;
                let pack = |ack: ledgerdb_core::AppendAck| Response::Appended {
                    jsn: self.sharded.pack(shard_id, ack.jsn),
                    tx_hash: ack.tx_hash,
                };
                match (committed, proxy) {
                    (true, false) => match shard.append_committed(tx) {
                        Ok(receipt) => Response::Committed(receipt),
                        Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                    },
                    (true, true) => match shard.append_committed_preverified(tx) {
                        Ok(receipt) => Response::Committed(receipt),
                        Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                    },
                    (false, false) => match shard.append(tx) {
                        Ok(ack) => pack(ack),
                        Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                    },
                    (false, true) => match shard.append_preverified(tx) {
                        Ok(ack) => pack(ack),
                        Err(e) => Response::Error(ErrorFrame::from_ledger_error(&e)),
                    },
                }
            }
        };
        // Surface a stashed auto-seal durability failure on the request
        // that caused it: the append's payload is durable, but a block
        // boundary failed to reach the WAL — refuse the ack so the
        // client retries (idempotent at-least-once) instead of trusting
        // a seal that may not survive a crash.
        if let Some(e) = shard.take_durability_error() {
            return Response::Error(ErrorFrame::from_ledger_error(&e));
        }
        response
    }

    /// The typed refusal written to a connection over the cap, on either
    /// transport: the binary `Busy` frame. Counted on
    /// `ledger_conn_rejected_total` by the caller.
    pub fn busy_frame() -> Response {
        Response::Error(ErrorFrame {
            code: ErrorCode::Busy,
            detail: "connection limit reached; retry with backoff".into(),
        })
    }
}
