//! Property-based tests for the Merkle Patricia Trie: model-checked
//! against a HashMap, proof soundness, and root canonicity.
//!
//! Cases come from the deterministic in-repo harness
//! (`ledgerdb_bench::cases`); see that module for the seeding scheme.

use ledgerdb::crypto::sha3_256;
use ledgerdb::mpt::{verify_proof, Mpt};
use ledgerdb_bench::cases::{run_cases, Gen};
use std::collections::HashMap;

/// Arbitrary short keys (including empty and shared-prefix heavy ones):
/// nibbles from a tiny alphabet, length 0..=5.
fn key(g: &mut Gen) -> Vec<u8> {
    let n = g.usize_in(0..=5);
    (0..n).map(|_| g.below(8) as u8).collect()
}

fn value(g: &mut Gen) -> Vec<u8> {
    g.bytes(0..=7)
}

/// A key→value population with distinct keys (HashMap semantics).
fn population(g: &mut Gen, len: std::ops::RangeInclusive<usize>) -> HashMap<Vec<u8>, Vec<u8>> {
    let n = g.usize_in(len);
    let mut map = HashMap::new();
    while map.len() < n {
        map.insert(key(g), value(g));
    }
    map
}

/// The trie agrees with a HashMap model under arbitrary insert
/// sequences (including overwrites).
#[test]
fn matches_hashmap_model() {
    run_cases("matches hashmap model", 64, |g| {
        let n = g.usize_in(1..=59);
        let ops: Vec<(Vec<u8>, Vec<u8>)> = (0..n).map(|_| (key(g), value(g))).collect();
        let mut trie = Mpt::new();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (k, v) in &ops {
            let trie_old = trie.insert(k, v.clone());
            let model_old = model.insert(k.clone(), v.clone());
            assert_eq!(trie_old, model_old);
        }
        assert_eq!(trie.len(), model.len());
        for (k, v) in &model {
            assert_eq!(trie.get(k), Some(v.as_slice()));
        }
    });
}

/// The root is canonical: any insertion order yields the same root.
#[test]
fn root_is_order_independent() {
    run_cases("root is order independent", 64, |g| {
        let pairs = population(g, 1..=29);
        let items: Vec<_> = pairs.iter().collect();
        let mut t1 = Mpt::new();
        for (k, v) in &items {
            t1.insert(k, (*v).clone());
        }
        let mut shuffled = items.clone();
        g.shuffle(&mut shuffled);
        let mut t2 = Mpt::new();
        for (k, v) in &shuffled {
            t2.insert(k, (*v).clone());
        }
        assert_eq!(t1.root_hash(), t2.root_hash());
    });
}

/// Every stored key yields a proof that verifies against the root,
/// and the proof value equals the stored value.
#[test]
fn proofs_sound() {
    run_cases("proofs sound", 64, |g| {
        let pairs = population(g, 1..=29);
        let mut trie = Mpt::new();
        for (k, v) in &pairs {
            trie.insert(k, v.clone());
        }
        let root = trie.root_hash();
        for (k, v) in &pairs {
            let proof = trie.prove(k).unwrap();
            assert_eq!(&proof.value, v);
            assert!(verify_proof(&root, &proof).is_ok());
        }
    });
}

/// Proofs against a *different* trie's root fail unless the tries are
/// identical.
#[test]
fn proofs_bound_to_root() {
    run_cases("proofs bound to root", 64, |g| {
        let mut pairs = population(g, 2..=19);
        for v in pairs.values_mut() {
            if v.is_empty() {
                v.push(g.below(256) as u8);
            }
        }
        let mut trie = Mpt::new();
        for (k, v) in &pairs {
            trie.insert(k, v.clone());
        }
        let root = trie.root_hash();
        let some_key = pairs.keys().next().unwrap().clone();
        let proof = trie.prove(&some_key).unwrap();
        // Mutate one entry.
        let mut other = trie.clone();
        other.insert(&some_key, b"mutated-value-xyz".to_vec());
        let other_root = other.root_hash();
        assert_ne!(root, other_root);
        assert!(verify_proof(&other_root, &proof).is_err());
    });
}

/// Hashed (SHA3-scattered) keys — the CM-Tree1 usage pattern — behave
/// identically: insert, get, prove for all.
#[test]
fn hashed_key_usage() {
    run_cases("hashed key usage", 64, |g| {
        let n = g.in_range(1..=119);
        let mut trie = Mpt::new();
        for i in 0..n {
            let k = sha3_256(&i.to_be_bytes());
            trie.insert(k.as_bytes(), i.to_be_bytes().to_vec());
        }
        let root = trie.root_hash();
        for i in 0..n {
            let k = sha3_256(&i.to_be_bytes());
            let expect = i.to_be_bytes();
            assert_eq!(trie.get(k.as_bytes()), Some(expect.as_slice()));
            let proof = trie.prove(k.as_bytes()).unwrap();
            assert!(verify_proof(&root, &proof).is_ok());
        }
    });
}
