//! Property-based tests for the Merkle Patricia Trie: model-checked
//! against a HashMap, proof soundness, and root canonicity.

use ledgerdb::crypto::sha3_256;
use ledgerdb::mpt::{verify_proof, Mpt};
use proptest::prelude::*;
use std::collections::HashMap;

/// Arbitrary short keys (including empty and shared-prefix heavy ones).
fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..8, 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The trie agrees with a HashMap model under arbitrary insert
    /// sequences (including overwrites).
    #[test]
    fn matches_hashmap_model(
        ops in prop::collection::vec((key_strategy(), prop::collection::vec(any::<u8>(), 0..8)), 1..60)
    ) {
        let mut trie = Mpt::new();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (k, v) in &ops {
            let trie_old = trie.insert(k, v.clone());
            let model_old = model.insert(k.clone(), v.clone());
            prop_assert_eq!(trie_old, model_old);
        }
        prop_assert_eq!(trie.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(trie.get(k), Some(v.as_slice()));
        }
    }

    /// The root is canonical: any insertion order yields the same root.
    #[test]
    fn root_is_order_independent(
        pairs in prop::collection::hash_map(key_strategy(), prop::collection::vec(any::<u8>(), 0..8), 1..30),
        seed in any::<u64>(),
    ) {
        let items: Vec<_> = pairs.iter().collect();
        let mut t1 = Mpt::new();
        for (k, v) in &items {
            t1.insert(k, (*v).clone());
        }
        // Deterministic shuffle driven by the seed.
        let mut shuffled = items.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let mut t2 = Mpt::new();
        for (k, v) in &shuffled {
            t2.insert(k, (*v).clone());
        }
        prop_assert_eq!(t1.root_hash(), t2.root_hash());
    }

    /// Every stored key yields a proof that verifies against the root,
    /// and the proof value equals the stored value.
    #[test]
    fn proofs_sound(
        pairs in prop::collection::hash_map(key_strategy(), prop::collection::vec(any::<u8>(), 0..8), 1..30)
    ) {
        let mut trie = Mpt::new();
        for (k, v) in &pairs {
            trie.insert(k, v.clone());
        }
        let root = trie.root_hash();
        for (k, v) in &pairs {
            let proof = trie.prove(k).unwrap();
            prop_assert_eq!(&proof.value, v);
            prop_assert!(verify_proof(&root, &proof).is_ok());
        }
    }

    /// Proofs against a *different* trie's root fail unless the tries are
    /// identical.
    #[test]
    fn proofs_bound_to_root(
        pairs in prop::collection::hash_map(key_strategy(), prop::collection::vec(any::<u8>(), 1..8), 2..20),
    ) {
        let mut trie = Mpt::new();
        for (k, v) in &pairs {
            trie.insert(k, v.clone());
        }
        let root = trie.root_hash();
        let some_key = pairs.keys().next().unwrap().clone();
        let proof = trie.prove(&some_key).unwrap();
        // Mutate one entry.
        let mut other = trie.clone();
        other.insert(&some_key, b"mutated-value-xyz".to_vec());
        let other_root = other.root_hash();
        prop_assert_ne!(root, other_root);
        prop_assert!(verify_proof(&other_root, &proof).is_err());
    }

    /// Hashed (SHA3-scattered) keys — the CM-Tree1 usage pattern — behave
    /// identically: insert, get, prove for all.
    #[test]
    fn hashed_key_usage(n in 1u64..120) {
        let mut trie = Mpt::new();
        for i in 0..n {
            let k = sha3_256(&i.to_be_bytes());
            trie.insert(k.as_bytes(), i.to_be_bytes().to_vec());
        }
        let root = trie.root_hash();
        for i in 0..n {
            let k = sha3_256(&i.to_be_bytes());
            let expect = i.to_be_bytes();
            prop_assert_eq!(trie.get(k.as_bytes()), Some(expect.as_slice()));
            let proof = trie.prove(k.as_bytes()).unwrap();
            prop_assert!(verify_proof(&root, &proof).is_ok());
        }
    }
}
