//! Snapshot/restore integration tests: a ledger survives export →
//! serialize → deserialize → replay with all verification structures
//! intact, and corrupted snapshots are rejected.

use ledgerdb::core::{
    audit_ledger, AuditConfig, LedgerConfig, LedgerDb, LedgerSnapshot, MemberRegistry, OccultMode,
    TxRequest, VerifyLevel,
};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;
use ledgerdb::crypto::wire::Wire;
use ledgerdb::storage::stream::{FileStreamStore, MemoryStreamStore};
use ledgerdb::timesvc::clock::SimClock;
use std::sync::Arc;

struct World {
    ledger: LedgerDb,
    alice: KeyPair,
    dba: KeyPair,
    regulator: KeyPair,
    ca: CertificateAuthority,
}

fn world() -> World {
    let ca = CertificateAuthority::from_seed(b"persist-ca");
    let alice = KeyPair::from_seed(b"persist-alice");
    let dba = KeyPair::from_seed(b"persist-dba");
    let regulator = KeyPair::from_seed(b"persist-reg");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
    registry.register(ca.issue("reg", Role::Regulator, regulator.public())).unwrap();
    let ledger = LedgerDb::new(
        LedgerConfig { block_size: 4, fam_delta: 5, name: "persist".into(), state_backend: Default::default() },
        registry,
    );
    World { ledger, alice, dba, regulator, ca }
}

fn registry_of(w: &World) -> MemberRegistry {
    let mut registry = MemberRegistry::new(*w.ca.public_key());
    registry.register(w.ca.issue("alice", Role::User, w.alice.public())).unwrap();
    registry.register(w.ca.issue("dba", Role::Dba, w.dba.public())).unwrap();
    registry.register(w.ca.issue("reg", Role::Regulator, w.regulator.public())).unwrap();
    registry
}

fn config() -> LedgerConfig {
    LedgerConfig { block_size: 4, fam_delta: 5, name: "persist".into(), state_backend: Default::default() }
}

fn populate(w: &mut World, n: u64) {
    for i in 0..n {
        let req = TxRequest::signed(
            &w.alice,
            format!("payload-{i}").into_bytes(),
            vec![format!("c{}", i % 3)],
            i,
        );
        w.ledger.append(req).unwrap();
    }
    w.ledger.seal_block();
}

fn restore(w: &World, bytes: &[u8]) -> Result<LedgerDb, Box<dyn std::error::Error>> {
    let snapshot = LedgerSnapshot::from_wire(bytes)?;
    Ok(LedgerDb::restore(
        snapshot,
        config(),
        registry_of(w),
        Arc::new(MemoryStreamStore::new()),
        Arc::new(SimClock::new()),
    )?)
}

#[test]
fn round_trip_preserves_roots_and_proofs() {
    let mut w = world();
    populate(&mut w, 20);
    let bytes = w.ledger.export_bytes().unwrap();
    let restored = restore(&w, &bytes).unwrap();

    assert_eq!(restored.journal_count(), w.ledger.journal_count());
    assert_eq!(restored.journal_root(), w.ledger.journal_root());
    assert_eq!(restored.clue_root(), w.ledger.clue_root());
    assert_eq!(restored.state_root(), w.ledger.state_root());
    assert_eq!(restored.block_count(), w.ledger.block_count());

    // Proofs still work on the restored ledger.
    let anchor = restored.anchor();
    for jsn in 0..restored.journal_count() {
        let (tx_hash, proof) = restored.prove_existence(jsn, &anchor).unwrap();
        restored
            .verify_existence(jsn, &tx_hash, &proof, &anchor, VerifyLevel::Client)
            .unwrap();
    }
    let clue_proof = restored.prove_clue("c1").unwrap();
    restored.verify_clue(&clue_proof, VerifyLevel::Client).unwrap();

    // And the restored ledger passes the full audit.
    audit_ledger(&restored, &AuditConfig::default()).unwrap();
}

#[test]
fn restored_ledger_continues_appending() {
    let mut w = world();
    populate(&mut w, 10);
    let bytes = w.ledger.export_bytes().unwrap();
    let mut restored = restore(&w, &bytes).unwrap();
    let req = TxRequest::signed(&w.alice, b"after-restore".to_vec(), vec!["c0".into()], 999);
    let ack = restored.append(req).unwrap();
    assert_eq!(ack.jsn, 10);
    restored.seal_block();
    assert_eq!(restored.get_payload(10).unwrap(), b"after-restore");
    audit_ledger(&restored, &AuditConfig::default()).unwrap();
}

#[test]
fn mutations_survive_restore() {
    let mut w = world();
    populate(&mut w, 16);
    // Occult one journal and purge the first four.
    let od = w.ledger.occult_approval_digest(6);
    let mut oms = MultiSignature::new();
    oms.add(&w.dba, &od);
    oms.add(&w.regulator, &od);
    w.ledger.occult(6, oms, OccultMode::Sync).unwrap();
    let pd = w.ledger.purge_approval_digest(4);
    let mut pms = MultiSignature::new();
    pms.add(&w.dba, &pd);
    pms.add(&w.alice, &pd);
    w.ledger.purge(4, pms, &[], false).unwrap();
    w.ledger.seal_block();

    let bytes = w.ledger.export_bytes().unwrap();
    let restored = restore(&w, &bytes).unwrap();

    assert!(restored.is_occulted(6));
    assert!(restored.get_tx(6).is_err());
    assert!(restored.get_tx(1).is_err(), "purged journal stays purged");
    assert_eq!(restored.pseudo_genesis().unwrap().purge_to, 4);
    let report = audit_ledger(&restored, &AuditConfig::default()).unwrap();
    assert_eq!(report.occult_journals, 1);
    assert_eq!(report.purge_journals, 1);
}

#[test]
fn tampered_snapshot_rejected() {
    let mut w = world();
    populate(&mut w, 12);
    let snapshot = w.ledger.export_snapshot().unwrap();

    // Payload swap: digest check catches it.
    let mut forged = snapshot.clone();
    forged.payloads[3] = Some(b"forged payload".to_vec());
    assert!(LedgerDb::restore(
        forged,
        config(),
        registry_of(&w),
        Arc::new(MemoryStreamStore::new()),
        Arc::new(SimClock::new()),
    )
    .is_err());

    // Journal reorder: replay root checks catch it.
    let mut forged = snapshot.clone();
    forged.journals.swap(1, 2);
    assert!(LedgerDb::restore(
        forged,
        config(),
        registry_of(&w),
        Arc::new(MemoryStreamStore::new()),
        Arc::new(SimClock::new()),
    )
    .is_err());

    // Dropped journal: block accounting catches it.
    let mut forged = snapshot.clone();
    forged.journals.pop();
    forged.payloads.pop();
    assert!(LedgerDb::restore(
        forged,
        config(),
        registry_of(&w),
        Arc::new(MemoryStreamStore::new()),
        Arc::new(SimClock::new()),
    )
    .is_err());

    // Tampered block root: replay comparison catches it.
    let mut forged = snapshot;
    forged.blocks[0].info.journal_root = ledgerdb::crypto::sha256(b"evil");
    assert!(LedgerDb::restore(
        forged,
        config(),
        registry_of(&w),
        Arc::new(MemoryStreamStore::new()),
        Arc::new(SimClock::new()),
    )
    .is_err());
}

#[test]
fn snapshot_to_file_backed_store() {
    let mut w = world();
    populate(&mut w, 8);
    let bytes = w.ledger.export_bytes().unwrap();

    let dir = std::env::temp_dir().join(format!("ledgerdb-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stream_path = dir.join("restored-stream.dat");
    let snapshot = LedgerSnapshot::from_wire(&bytes).unwrap();
    let restored = LedgerDb::restore(
        snapshot,
        config(),
        registry_of(&w),
        Arc::new(FileStreamStore::create(&stream_path).unwrap()),
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert_eq!(restored.journal_root(), w.ledger.journal_root());
    assert_eq!(restored.get_payload(3).unwrap(), b"payload-3");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_bytes_truncation_rejected() {
    let mut w = world();
    populate(&mut w, 6);
    let bytes = w.ledger.export_bytes().unwrap();
    for cut in [0usize, 5, bytes.len() / 2, bytes.len() - 1] {
        assert!(LedgerSnapshot::from_wire(&bytes[..cut]).is_err());
    }
}
