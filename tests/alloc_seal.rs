//! Allocation discipline of the seal path, pinned by a counting global
//! allocator — which is why this test lives in its own integration
//! binary (the allocator hook is process-wide).
//!
//! The seal path used to clone the freshly built `Block` (including its
//! whole `tx_hashes` vector) just to wire-encode it into the WAL seal
//! record. With the borrowed `seal_wire` encoding, the number of heap
//! allocations a single seal performs is bounded by the block's own
//! contents plus logarithmic tree maintenance — it must NOT grow
//! linearly with chain length.

use ledgerdb::core::recovery::open_durable;
use ledgerdb::core::{LedgerConfig, MemberRegistry, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::storage::FsyncPolicy;
use ledgerdb::timesvc::clock::SimClock;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn per_seal_allocations_do_not_scale_with_chain_length() {
    let ca = CertificateAuthority::from_seed(b"alloc-ca");
    let alice = KeyPair::from_seed(b"alloc-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();

    let dir = std::env::temp_dir().join(format!("ledgerdb-alloc-seal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // block_size never auto-seals: every seal below is explicit, so the
    // counter windows contain exactly one seal each.
    let config = LedgerConfig { block_size: u64::MAX, fam_delta: 10, name: "alloc".into(), state_backend: Default::default() };
    let (mut ledger, _) = open_durable(
        config,
        registry,
        &dir,
        FsyncPolicy::Never,
        Arc::new(SimClock::new()),
    )
    .unwrap();

    const BLOCK_TXS: u64 = 4;
    fn seal_costs(
        ledger: &mut ledgerdb::core::LedgerDb,
        alice: &KeyPair,
        nonce: &mut u64,
        seals: u64,
    ) -> Vec<u64> {
        (0..seals)
            .map(|_| {
                for _ in 0..BLOCK_TXS {
                    let req = TxRequest::signed(
                        alice,
                        nonce.to_be_bytes().to_vec(),
                        vec![format!("a{}", *nonce % 8)],
                        *nonce,
                    );
                    ledger.append(req).unwrap();
                    *nonce += 1;
                }
                let before = allocs();
                ledger.try_seal_block().unwrap();
                allocs() - before
            })
            .collect()
    }

    let mut nonce = 0u64;
    let early: Vec<u64> = seal_costs(&mut ledger, &alice, &mut nonce, 16);

    // Grow the chain well past the early sample: ~600 more blocks.
    for _ in 0..600u64 {
        for _ in 0..BLOCK_TXS {
            let req = TxRequest::signed(&alice, nonce.to_be_bytes().to_vec(), vec![], nonce);
            ledger.append(req).unwrap();
            nonce += 1;
        }
        ledger.try_seal_block().unwrap();
    }

    let late: Vec<u64> = seal_costs(&mut ledger, &alice, &mut nonce, 16);
    std::fs::remove_dir_all(&dir).ok();

    let early_avg = early.iter().sum::<u64>() as f64 / early.len() as f64;
    let late_avg = late.iter().sum::<u64>() as f64 / late.len() as f64;
    assert!(early_avg > 0.0, "seals allocate something (sanity)");
    // Tree maintenance is logarithmic; a 600-block chain adds ~10 bits
    // of depth. If the seal path cloned anything chain-sized (the old
    // `WalRecord::Seal(block.clone())` bug pattern applied to a
    // chain-length structure), this ratio would blow past any constant.
    assert!(
        late_avg <= early_avg * 4.0 + 64.0,
        "per-seal allocations grew with chain length: early avg {early_avg:.1}, late avg {late_avg:.1}"
    );
}
