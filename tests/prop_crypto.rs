//! Property-based tests for the crypto substrate: hash stability, U256
//! field algebra, ECDSA round trips, and multi-signature coverage.

use ledgerdb::crypto::field::{fn_order, fp};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;
use ledgerdb::crypto::u256::U256;
use ledgerdb::crypto::{sha256, sha3_256, Signature};
use proptest::prelude::*;

fn u256_strategy() -> impl Strategy<Value = U256> {
    (any::<[u8; 32]>()).prop_map(|b| U256::from_be_bytes(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SHA-256/SHA3-256 are deterministic and sensitive to single-byte
    /// changes.
    #[test]
    fn hashes_deterministic_and_sensitive(
        data in prop::collection::vec(any::<u8>(), 1..512),
        flip in any::<prop::sample::Index>(),
    ) {
        prop_assert_eq!(sha256(&data), sha256(&data));
        prop_assert_eq!(sha3_256(&data), sha3_256(&data));
        let mut tampered = data.clone();
        let i = flip.index(tampered.len());
        tampered[i] ^= 0x01;
        prop_assert_ne!(sha256(&data), sha256(&tampered));
        prop_assert_ne!(sha3_256(&data), sha3_256(&tampered));
    }

    /// Field algebra mod p and mod n: commutativity, associativity,
    /// distributivity, additive/multiplicative inverses.
    #[test]
    fn modular_algebra(a in u256_strategy(), b in u256_strategy(), c in u256_strategy()) {
        for m in [fp(), fn_order()] {
            let (a, b, c) = (m.reduce(a), m.reduce(b), m.reduce(c));
            prop_assert_eq!(m.add(&a, &b), m.add(&b, &a));
            prop_assert_eq!(m.mul(&a, &b), m.mul(&b, &a));
            prop_assert_eq!(m.add(&m.add(&a, &b), &c), m.add(&a, &m.add(&b, &c)));
            prop_assert_eq!(m.mul(&m.mul(&a, &b), &c), m.mul(&a, &m.mul(&b, &c)));
            prop_assert_eq!(
                m.mul(&a, &m.add(&b, &c)),
                m.add(&m.mul(&a, &b), &m.mul(&a, &c))
            );
            prop_assert_eq!(m.add(&a, &m.neg(&a)), U256::ZERO);
            if !a.is_zero() {
                let inv = m.inv(&a).unwrap();
                prop_assert_eq!(m.mul(&a, &inv), U256::ONE);
            }
        }
    }

    /// U256 byte round trips.
    #[test]
    fn u256_bytes_round_trip(bytes in any::<[u8; 32]>()) {
        let x = U256::from_be_bytes(&bytes);
        prop_assert_eq!(x.to_be_bytes(), bytes);
    }

    /// ECDSA: honest signatures verify; cross-key and cross-message
    /// verifications fail.
    #[test]
    fn ecdsa_round_trip(seed1 in any::<[u8; 8]>(), seed2 in any::<[u8; 8]>(), msg in any::<[u8; 16]>()) {
        let kp1 = KeyPair::from_seed(&seed1);
        let kp2 = KeyPair::from_seed(&seed2);
        let digest = sha256(&msg);
        let sig = kp1.sign(&digest);
        prop_assert!(kp1.public().verify(&digest, &sig));
        if kp1.public() != kp2.public() {
            prop_assert!(!kp2.public().verify(&digest, &sig));
        }
        let other = sha256(b"another message entirely");
        if other != digest {
            prop_assert!(!kp1.public().verify(&other, &sig));
        }
    }

    /// Signature serialization round trips; bit flips break verification.
    #[test]
    fn signature_serde(seed in any::<[u8; 8]>(), msg in any::<[u8; 16]>(), flip in 0usize..512) {
        let kp = KeyPair::from_seed(&seed);
        let digest = sha256(&msg);
        let sig = kp.sign(&digest);
        let bytes = sig.to_bytes();
        let parsed = Signature::from_bytes(&bytes).unwrap();
        prop_assert_eq!(sig, parsed);
        let mut tampered = bytes;
        tampered[flip % 64] ^= 1 << (flip / 64 % 8);
        if let Some(bad) = Signature::from_bytes(&tampered) {
            if bad != sig {
                prop_assert!(!kp.public().verify(&digest, &bad));
            }
        }
    }

    /// Multi-signatures cover exactly the signer set that signed.
    #[test]
    fn multisig_coverage(present in prop::collection::vec(any::<bool>(), 3..6), msg in any::<[u8; 8]>()) {
        let digest = sha256(&msg);
        let keys: Vec<KeyPair> =
            (0..present.len()).map(|i| KeyPair::from_seed(&[i as u8, 0xaa])).collect();
        let mut ms = MultiSignature::new();
        for (k, &p) in keys.iter().zip(&present) {
            if p {
                ms.add(k, &digest);
            }
        }
        prop_assert!(ms.verify_all(&digest));
        let all: Vec<_> = keys.iter().map(|k| *k.public()).collect();
        let covers_all = ms.covers(&digest, &all);
        prop_assert_eq!(covers_all, present.iter().all(|&p| p));
    }
}
