//! Hostile-slow-client tests against a deliberately tiny event loop:
//! four connection slots, a sub-second progress deadline. Trickled
//! frames, header-then-stall slowloris, and half-closed sockets must
//! never wedge a slot — the idle deadline fires on *lack of progress*
//! and frees it, while legitimate slow-but-finite clients still get
//! served.

use ledgerdb::core::{LedgerConfig, LedgerDb, MemberRegistry, SharedLedger, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::wire::Wire;
use ledgerdb::server::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, DEFAULT_MAX_FRAME,
};
use ledgerdb::server::{EventConfig, EventLedgerd, ServerConfig};
use ledgerdb::telemetry::Registry;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IDLE: Duration = Duration::from_millis(700);

fn fixture() -> (SharedLedger, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"event-loop-test");
    let alice = KeyPair::from_seed(b"event-loop-test-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    let config = LedgerConfig { block_size: 4, fam_delta: 15, name: "event-loop-test".into(), state_backend: Default::default() };
    (SharedLedger::new(LedgerDb::new(config, registry)), alice)
}

/// A 4-slot loop with a short progress deadline.
fn tiny_server() -> (EventLedgerd, KeyPair) {
    let (shared, alice) = fixture();
    let config = EventConfig {
        server: ServerConfig {
            registry: Arc::new(Registry::new()),
            max_connections: 4,
            workers: 2,
            ..ServerConfig::default()
        },
        http_bind: Some("127.0.0.1:0".into()),
        idle_timeout: IDLE,
    };
    (EventLedgerd::start(shared, config).unwrap(), alice)
}

/// Block until the peer closes (EOF) or the deadline passes; true = EOF.
fn saw_eof_within(stream: &mut TcpStream, deadline: Duration) -> bool {
    stream.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    let start = Instant::now();
    let mut sink = [0u8; 4096];
    while start.elapsed() < deadline {
        match stream.read(&mut sink) {
            Ok(0) => return true,
            Ok(_) => continue, // discard any final response bytes
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return true, // RST counts as closed too
        }
    }
    false
}

#[test]
fn slow_but_finite_client_is_served() {
    let (server, _) = tiny_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_nodelay(true).unwrap();

    // One byte at a time, but finishing well inside the deadline: the
    // parser must accumulate partial frames without penalizing them.
    let mut frame = Vec::new();
    write_frame(&mut frame, &Request::GetAnchor.to_wire()).unwrap();
    for byte in &frame {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_wire(&body).unwrap() {
        Response::Anchor(_) => {}
        other => panic!("expected an anchor, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn binary_trickler_that_stalls_hits_the_deadline() {
    let (server, alice) = tiny_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Half a frame header, then silence. No complete frame ever parses,
    // so no progress is ever recorded — the reaper must cut it loose.
    stream.write_all(&[1, 0, 0]).unwrap();
    assert!(
        saw_eof_within(&mut stream, IDLE * 6),
        "stalled mid-frame connection was never reaped"
    );

    // The slot is free again: a real client gets served.
    let mut ok = TcpStream::connect(server.local_addr()).unwrap();
    ok.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(
        &mut ok,
        &Request::Append(TxRequest::signed(&alice, b"after-stall".to_vec(), vec![], 0)).to_wire(),
    )
    .unwrap();
    let body = read_frame(&mut ok, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(Response::from_wire(&body).unwrap(), Response::Appended { jsn: 0, .. }));
    server.shutdown();
}

#[test]
fn http_header_then_stall_slowloris_hits_the_deadline() {
    let (server, _) = tiny_server();
    let http = server.http_addr().unwrap();
    let mut stream = TcpStream::connect(http).unwrap();

    // A classic slowloris opener: a plausible start, never finished.
    stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nX-Drip:").unwrap();
    assert!(
        saw_eof_within(&mut stream, IDLE * 6),
        "header-then-stall connection was never reaped"
    );

    // The HTTP listener still answers afterwards.
    let mut ok = TcpStream::connect(http).unwrap();
    ok.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    ok.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = ok.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF before response");
        buf.extend_from_slice(&chunk[..n]);
    }
    assert!(buf.starts_with(b"HTTP/1.1 200"), "{:?}", String::from_utf8_lossy(&buf));
    server.shutdown();
}

#[test]
fn half_close_mid_request_still_gets_the_response() {
    let (server, _) = tiny_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Send a full request, then FIN our write side immediately: the
    // server owes the response and must deliver it to the still-open
    // read side rather than treating EOF as abandonment.
    write_frame(&mut stream, &Request::GetAnchor.to_wire()).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(Response::from_wire(&body).unwrap(), Response::Anchor(_)));
    // After the response, the server closes its side too.
    match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
        Err(FrameError::Closed) => {}
        other => panic!("expected a clean close after the response, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn stalled_connections_free_their_slots_for_new_clients() {
    let (server, _) = tiny_server();

    // Fill all four slots with silent connections…
    let stalled: Vec<TcpStream> =
        (0..4).map(|_| TcpStream::connect(server.local_addr()).unwrap()).collect();
    // Give the loop a beat to accept all four.
    std::thread::sleep(Duration::from_millis(150));

    // …the fifth gets a typed Busy refusal, not a silent drop.
    let mut refused = TcpStream::connect(server.local_addr()).unwrap();
    refused.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let body = read_frame(&mut refused, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_wire(&body).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Busy),
        other => panic!("expected Busy, got {other:?}"),
    }
    drop(refused);

    // Past the deadline the reaper frees all four silent slots; a new
    // client connects and is served without any of them cooperating.
    std::thread::sleep(IDLE + IDLE / 2);
    let mut ok = TcpStream::connect(server.local_addr()).unwrap();
    ok.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut ok, &Request::GetAnchor.to_wire()).unwrap();
    let body = read_frame(&mut ok, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(Response::from_wire(&body).unwrap(), Response::Anchor(_)));
    drop(stalled);
    server.shutdown();
}

#[test]
fn pipelined_binary_frames_in_one_write_both_answer() {
    // Two complete frames land in a single TCP segment. While the
    // first is in flight the loop drops read interest; the second
    // frame — already sitting in `read_buf` or still in the kernel
    // buffer — must not be lost when interest is re-armed. Both
    // responses must come back, in order.
    let (server, alice) = tiny_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_nodelay(true).unwrap();

    let tx = TxRequest::signed(&alice, b"pipelined-0".to_vec(), vec![], 0);
    let mut combined = Vec::new();
    write_frame(&mut combined, &Request::Append(tx).to_wire()).unwrap();
    write_frame(&mut combined, &Request::GetAnchor.to_wire()).unwrap();
    stream.write_all(&combined).unwrap();

    let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_wire(&body).unwrap() {
        Response::Appended { jsn, .. } => assert_eq!(jsn, 0),
        other => panic!("first pipelined response must be the append ack, got {other:?}"),
    }
    let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert!(
        matches!(Response::from_wire(&body).unwrap(), Response::Anchor(_)),
        "second pipelined frame was lost"
    );
    server.shutdown();
}

#[test]
fn pipelined_http_keepalive_requests_in_one_write_both_answer() {
    // Same property on the HTTP surface: two keep-alive GETs in one
    // write must yield two 200 responses on the same connection.
    let (server, _) = tiny_server();
    let http = server.http_addr().unwrap();
    let mut stream = TcpStream::connect(http).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_nodelay(true).unwrap();

    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /status HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .unwrap();

    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(10);
    while buf.windows(12).filter(|w| w.starts_with(b"HTTP/1.1 200")).count() < 2 {
        assert!(Instant::now() < deadline, "second keep-alive response never arrived");
        match stream.read(&mut chunk) {
            Ok(0) => panic!(
                "EOF after {} bytes; second pipelined HTTP request was dropped",
                buf.len()
            ),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("read failed: {e}"),
        }
    }
    server.shutdown();
}
