//! Exhaustive crash-point injection for the checkpoint engine.
//!
//! Every durability-relevant I/O operation on the checkpoint path —
//! every segment/manifest/HEAD write, fsync, rename, directory fsync,
//! and the WAL-reset ladder — is numbered by [`CkptIo`]. The harness:
//!
//! 1. runs the workload once with an unarmed router (the **control**),
//!    recording the ledger's full state fingerprint after every step
//!    and the complete operation schedule;
//! 2. replays the workload once per operation with a kill armed there
//!    (plus torn-write variants at every `Write` site), stopping at the
//!    first surfaced error — the simulated moment of death;
//! 3. recovers from the on-disk state and asserts the recovered ledger
//!    is **byte-identical** (state fingerprint: roots, block hashes,
//!    tx-hashes, erased flags, occult bits, pseudo genesis…) to the
//!    control at the same completed-step count, and that `HEAD` either
//!    names a fully verifiable checkpoint or is absent.
//!
//! Prefix determinism makes the comparison sound: both runs perform the
//! identical operation sequence up to the armed op (the only injected
//! difference), so "the control after k completed steps" is exactly the
//! state a never-crashed process would have reached.

use ledgerdb::core::recovery::{open_durable, CHECKPOINT_DIR};
use ledgerdb::core::{LedgerConfig, LedgerDb, MemberRegistry, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;
use ledgerdb::crypto::Digest;
use ledgerdb::storage::{CheckpointStore, CkptIo, CrashPoint, FsyncPolicy, IoKind};
use ledgerdb::timesvc::clock::SimClock;
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct Members {
    dba: KeyPair,
    alice: KeyPair,
}

fn members() -> (MemberRegistry, Members) {
    let ca = CertificateAuthority::from_seed(b"cp-ca");
    let dba = KeyPair::from_seed(b"cp-dba");
    let regulator = KeyPair::from_seed(b"cp-reg");
    let alice = KeyPair::from_seed(b"cp-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
    registry.register(ca.issue("regulator", Role::Regulator, regulator.public())).unwrap();
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, Members { dba, alice })
}

fn config() -> LedgerConfig {
    LedgerConfig { block_size: 2, fam_delta: 4, name: "crash-points".into(), state_backend: Default::default() }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ledgerdb-cp-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn tx(keys: &KeyPair, nonce: u64) -> TxRequest {
    TxRequest::signed(keys, nonce.to_be_bytes().to_vec(), vec![format!("c{}", nonce % 3)], nonce)
}

/// Drive the deterministic workload until completion or the first
/// surfaced error (the simulated death). Returns the number of steps
/// that completed successfully.
///
/// The workload seals five blocks (checkpoint cadence: every seal) and
/// includes a purge, so crash points land in every phase: segment
/// writes, manifest commit, HEAD flip, WAL reset, and the post-purge
/// checkpoint rebuild.
fn drive(dir: &Path, registry: &MemberRegistry, m: &Members, io: Arc<CkptIo>) -> usize {
    let (mut ledger, _) = open_durable(
        config(),
        registry.clone(),
        dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .expect("the workload starts from a recoverable directory");
    let store = Arc::new(CheckpointStore::open(&dir.join(CHECKPOINT_DIR)).unwrap());
    ledger.enable_checkpoints(store, io, 1);

    let mut done = 0;
    // Steps 1..=6: appends (jsn 0..5; seals + checkpoints at jsn 1, 3, 5).
    for i in 0..6u64 {
        if ledger.append(tx(&m.alice, i)).is_err() {
            return done;
        }
        done += 1;
    }
    // Step 7: purge to jsn 2 — schedules a checkpoint rebuild at the
    // next seal and erases two payload slots.
    let digest = ledger.purge_approval_digest(2);
    let mut ms = MultiSignature::new();
    ms.add(&m.dba, &digest);
    ms.add(&m.alice, &digest);
    if ledger.purge(2, ms, &[], false).is_err() {
        return done;
    }
    done += 1;
    // Steps 8..=11: appends (jsn 7..10; seals + checkpoints at jsn 7, 9).
    for i in 0..4u64 {
        if ledger.append(tx(&m.alice, 100 + i)).is_err() {
            return done;
        }
        done += 1;
    }
    done
}

/// Control-run fingerprints: `fps[k]` is the ledger state after `k`
/// completed steps.
fn control_fingerprints(dir: &Path, registry: &MemberRegistry, m: &Members) -> Vec<Digest> {
    let (mut ledger, _) = open_durable(
        config(),
        registry.clone(),
        dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    let store = Arc::new(CheckpointStore::open(&dir.join(CHECKPOINT_DIR)).unwrap());
    ledger.enable_checkpoints(store, Arc::new(CkptIo::new()), 1);

    let mut fps = vec![ledger.state_fingerprint()];
    for i in 0..6u64 {
        ledger.append(tx(&m.alice, i)).unwrap();
        fps.push(ledger.state_fingerprint());
    }
    let digest = ledger.purge_approval_digest(2);
    let mut ms = MultiSignature::new();
    ms.add(&m.dba, &digest);
    ms.add(&m.alice, &digest);
    ledger.purge(2, ms, &[], false).unwrap();
    fps.push(ledger.state_fingerprint());
    for i in 0..4u64 {
        ledger.append(tx(&m.alice, 100 + i)).unwrap();
        fps.push(ledger.state_fingerprint());
    }
    assert!(ledger.durability_error().is_none(), "control run checkpoints cleanly");
    fps
}

/// After the simulated kill: `HEAD` must either be absent or name a
/// manifest whose content address verifies.
fn assert_head_valid_or_absent(dir: &Path, ctx: &str) {
    let store = CheckpointStore::open(&dir.join(CHECKPOINT_DIR)).unwrap();
    match store.load_head() {
        Ok(Some((id, bytes))) => {
            assert!(!bytes.is_empty(), "{ctx}: HEAD names an empty manifest");
            let _ = id;
        }
        Ok(None) => {}
        Err(e) => panic!("{ctx}: HEAD must be valid or absent, got: {e}"),
    }
}

#[test]
fn every_checkpoint_crash_point_recovers_byte_identical() {
    let (registry, m) = members();

    // Dry run: enumerate the full operation schedule and record the
    // control fingerprints.
    let control_dir = temp_dir("control");
    let io = Arc::new(CkptIo::new());
    let steps = drive(&control_dir, &registry, &m, Arc::clone(&io));
    let schedule = io.op_kinds();
    let fps = control_fingerprints(&temp_dir("control-fp"), &registry, &m);
    assert_eq!(steps + 1, fps.len(), "one fingerprint per completed step");
    assert_eq!(steps, 11, "the whole workload completes without injection");
    assert!(
        schedule.len() > 100,
        "five checkpoints + WAL resets enumerate a dense schedule, got {}",
        schedule.len()
    );
    for kind in [IoKind::Write, IoKind::Sync, IoKind::Rename, IoKind::SyncDir] {
        assert!(
            schedule.iter().any(|k| *k == kind),
            "schedule exercises {kind:?} sites"
        );
    }
    std::fs::remove_dir_all(&control_dir).ok();

    // Exhaustive sweep: kill at every op; torn variants at write sites.
    let mut sweeps = 0u64;
    for (idx, kind) in schedule.iter().enumerate() {
        let op = idx as u64 + 1;
        let variants: &[Option<usize>] = if *kind == IoKind::Write {
            &[None, Some(0), Some(3)]
        } else {
            &[None]
        };
        for &torn_keep in variants {
            sweeps += 1;
            let dir = temp_dir("kill");
            let io = Arc::new(CkptIo::new());
            io.arm(CrashPoint { op, torn_keep });
            let done = drive(&dir, &registry, &m, Arc::clone(&io));
            assert!(
                io.op_count() >= op,
                "op {op}: armed crash point was reached (prefix determinism)"
            );

            assert_head_valid_or_absent(&dir, &format!("op {op} torn {torn_keep:?}"));

            let (recovered, report) = open_durable(
                config(),
                registry.clone(),
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap_or_else(|e| {
                panic!("op {op} torn {torn_keep:?}: kill residue must recover, got: {e}")
            });
            assert_eq!(
                recovered.state_fingerprint(),
                fps[done],
                "op {op} ({kind:?}) torn {torn_keep:?}: recovered state must be \
                 byte-identical to the never-crashed control after {done} steps \
                 (report: {report:?})"
            );
            // The PR-1 tail invariants still hold under checkpoint
            // crashes: nothing in the *sealed* region was rejected, and
            // no journal lost its payload slot.
            assert_eq!(
                recovered.journal_count() as usize,
                recovered.blocks().iter().map(|b| b.journal_count as usize).sum::<usize>()
                    + recovered.pending_journals() as usize,
                "op {op}: blocks + pending cover every journal"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    // 5 checkpoints × (7 writes + syncs + renames + dir syncs) + resets:
    // the sweep count is the schedule plus two torn variants per write.
    let writes = schedule.iter().filter(|k| **k == IoKind::Write).count() as u64;
    assert_eq!(sweeps, schedule.len() as u64 + 2 * writes);
}

/// A distinctive byte string that appears *only* in purged payloads —
/// long enough that an accidental collision with CRCs, digests, or
/// framing bytes is implausible.
const MARKER: &[u8] = b"PURGE-MARKER-must-never-resurrect";

/// Purge-resurrection workload: four marker appends (sealed and covered
/// by checkpoint HEAD), a purge erasing the first two, then two plain
/// appends whose seal commits the rebuilt checkpoint. Returns completed
/// steps.
fn drive_purge(dir: &Path, registry: &MemberRegistry, m: &Members, io: Arc<CkptIo>) -> usize {
    let (mut ledger, _) = open_durable(
        config(),
        registry.clone(),
        dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .expect("the workload starts from a recoverable directory");
    let store = Arc::new(CheckpointStore::open(&dir.join(CHECKPOINT_DIR)).unwrap());
    ledger.enable_checkpoints(store, io, 1);

    let mut done = 0;
    // Steps 1..=4: appends jsn 0..3 (seals + checkpoints at jsn 1 and
    // 3). Only jsn 0 and 1 — exactly the journals the purge below will
    // erase — carry the marker; HEAD covers their block before the
    // purge runs.
    for i in 0..4u64 {
        let payload = if i < 2 {
            let mut p = MARKER.to_vec();
            p.extend_from_slice(&i.to_be_bytes());
            p
        } else {
            i.to_be_bytes().to_vec()
        };
        let tx = TxRequest::signed(&m.alice, payload, vec![format!("c{}", i % 3)], i);
        if ledger.append(tx).is_err() {
            return done;
        }
        done += 1;
    }
    // Step 5: purge to jsn 2 — erases the jsn-0/1 marker slots (both
    // inside checkpoint HEAD) and schedules a rebuild at the next seal.
    let digest = ledger.purge_approval_digest(2);
    let mut ms = MultiSignature::new();
    ms.add(&m.dba, &digest);
    ms.add(&m.alice, &digest);
    if ledger.purge(2, ms, &[], false).is_err() {
        return done;
    }
    done += 1;
    // Steps 6..=7: plain appends; the jsn-5 seal commits the rebuilt
    // checkpoint that must *exclude* the purged payloads.
    for i in 0..2u64 {
        if ledger.append(tx(&m.alice, 200 + i)).is_err() {
            return done;
        }
        done += 1;
    }
    done
}

fn control_purge_fingerprints(dir: &Path, registry: &MemberRegistry, m: &Members) -> Vec<Digest> {
    let (mut ledger, _) = open_durable(
        config(),
        registry.clone(),
        dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    let store = Arc::new(CheckpointStore::open(&dir.join(CHECKPOINT_DIR)).unwrap());
    ledger.enable_checkpoints(store, Arc::new(CkptIo::new()), 1);

    let mut fps = vec![ledger.state_fingerprint()];
    for i in 0..4u64 {
        let payload = if i < 2 {
            let mut p = MARKER.to_vec();
            p.extend_from_slice(&i.to_be_bytes());
            p
        } else {
            i.to_be_bytes().to_vec()
        };
        let t = TxRequest::signed(&m.alice, payload, vec![format!("c{}", i % 3)], i);
        ledger.append(t).unwrap();
        fps.push(ledger.state_fingerprint());
    }
    let digest = ledger.purge_approval_digest(2);
    let mut ms = MultiSignature::new();
    ms.add(&m.dba, &digest);
    ms.add(&m.alice, &digest);
    ledger.purge(2, ms, &[], false).unwrap();
    fps.push(ledger.state_fingerprint());
    for i in 0..2u64 {
        ledger.append(tx(&m.alice, 200 + i)).unwrap();
        fps.push(ledger.state_fingerprint());
    }
    assert!(ledger.durability_error().is_none(), "control run checkpoints cleanly");
    fps
}

/// Recovery must never resurrect purged payload bytes, at *any* crash
/// point between the purge and the rebuilt checkpoint's commit. The WAL
/// legitimately retains pre-purge append records until its reset — but
/// after recovery replays it, the redo-erasure invariant must leave the
/// payload store scrubbed on disk, the purged jsns unreadable, and the
/// recovered state byte-identical to the never-crashed control.
#[test]
fn purged_payloads_never_resurrect_across_crash_points() {
    let (registry, m) = members();

    // Dry run: schedule + control fingerprints. Step 5 is the purge.
    let control_dir = temp_dir("purge-control");
    let io = Arc::new(CkptIo::new());
    let steps = drive_purge(&control_dir, &registry, &m, Arc::clone(&io));
    assert_eq!(steps, 7, "the whole workload completes without injection");
    let schedule = io.op_kinds();
    let fps = control_purge_fingerprints(&temp_dir("purge-control-fp"), &registry, &m);
    assert_eq!(steps + 1, fps.len());
    // The never-crashed end state is itself marker-free.
    let payload_log =
        std::fs::read(control_dir.join(ledgerdb::core::recovery::PAYLOAD_FILE)).unwrap();
    assert!(
        !payload_log.windows(MARKER.len()).any(|w| w == MARKER),
        "control payload store still holds purged marker bytes"
    );
    std::fs::remove_dir_all(&control_dir).ok();

    const PURGE_STEP: usize = 5;
    for (idx, kind) in schedule.iter().enumerate() {
        let op = idx as u64 + 1;
        let variants: &[Option<usize>] =
            if *kind == IoKind::Write { &[None, Some(0), Some(3)] } else { &[None] };
        for &torn_keep in variants {
            let dir = temp_dir("purge-kill");
            let io = Arc::new(CkptIo::new());
            io.arm(CrashPoint { op, torn_keep });
            let done = drive_purge(&dir, &registry, &m, Arc::clone(&io));
            assert_head_valid_or_absent(&dir, &format!("purge op {op} torn {torn_keep:?}"));

            let (recovered, report) = open_durable(
                config(),
                registry.clone(),
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap_or_else(|e| {
                panic!("purge op {op} torn {torn_keep:?}: kill residue must recover, got: {e}")
            });
            assert_eq!(
                recovered.state_fingerprint(),
                fps[done],
                "purge op {op} ({kind:?}) torn {torn_keep:?}: recovered state must \
                 match the control after {done} steps (report: {report:?})"
            );
            if done >= PURGE_STEP {
                // The purge was acked before the kill: it must hold
                // across recovery, however the checkpoint died.
                for jsn in 0..2u64 {
                    assert!(
                        matches!(
                            recovered.get_tx(jsn),
                            Err(ledgerdb::core::LedgerError::Purged(_))
                        ),
                        "purge op {op} torn {torn_keep:?}: jsn {jsn} readable after purge"
                    );
                }
                let payload_log = std::fs::read(dir.join(ledgerdb::core::recovery::PAYLOAD_FILE))
                    .unwrap_or_default();
                assert!(
                    !payload_log.windows(MARKER.len()).any(|w| w == MARKER),
                    "purge op {op} ({kind:?}) torn {torn_keep:?}: recovery resurrected \
                     purged payload bytes into the payload store"
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// A second ledger process starting from the *same* directory after a
/// mid-checkpoint kill must also see a WAL bounded by the surviving
/// checkpoint: recovery work is O(tail), never O(history), whichever
/// side of the crash the HEAD landed on.
#[test]
fn killed_checkpoint_still_bounds_the_wal_tail() {
    let (registry, m) = members();
    let dir = temp_dir("tailbound");
    // Kill inside the *last* checkpoint (high op number): the prior
    // four checkpoints committed and reset the WAL, so even with the
    // fifth dead, replay is bounded by one block's records.
    let io = Arc::new(CkptIo::new());
    let probe = drive(&temp_dir("tailbound-probe"), &registry, &m, Arc::clone(&io));
    assert_eq!(probe, 11);
    let total = io.op_count();
    let io = Arc::new(CkptIo::new());
    io.arm(CrashPoint { op: total - 2, torn_keep: None });
    drive(&dir, &registry, &m, io);

    let (recovered, report) = open_durable(
        config(),
        registry.clone(),
        &dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert!(report.checkpoint.is_some(), "recovery started from a checkpoint");
    assert!(
        report.journals_replayed + report.blocks_verified + report.skipped_wal_records <= 6,
        "replay bounded by the post-checkpoint tail: {report:?}"
    );
    // The crash fires inside the checkpoint that follows the jsn-9
    // seal, so that append is acked (and durable) but the final append
    // never ran — 10 of the 11 workload journals survive.
    assert_eq!(recovered.journal_count(), 10);
    std::fs::remove_dir_all(&dir).ok();
}
