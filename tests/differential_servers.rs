//! Differential transport test: the thread-per-connection server and
//! the epoll event-loop server must produce **byte-identical** response
//! frames for the same request mix against identically-seeded ledgers.
//!
//! Both transports route through the same `RequestService`, so this is
//! an invariant by construction — the test pins it against regressions
//! in either transport's framing, dispatch, or ordering. `Stats` is
//! excluded: its payload is live telemetry (latencies, loop counters)
//! and legitimately differs between transports.

use ledgerdb::core::{LedgerConfig, LedgerDb, MemberRegistry, SharedLedger, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::wire::Wire;
use ledgerdb::server::protocol::{read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME};
use ledgerdb::server::{EventConfig, EventLedgerd, Ledgerd, ServerConfig};
use ledgerdb::telemetry::Registry;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn fixture(seed: &str) -> (SharedLedger, KeyPair) {
    let ca = CertificateAuthority::from_seed(seed.as_bytes());
    let alice = KeyPair::from_seed(format!("{seed}-alice").as_bytes());
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    let config = LedgerConfig { block_size: 4, fam_delta: 15, name: format!("diff-{seed}") };
    let shared = SharedLedger::new(LedgerDb::new(config, registry));
    (shared, alice)
}

/// Two ledgers built from the SAME seed with the SAME pre-appends are
/// bit-identical; the request mix then runs against both servers.
fn seeded_pair() -> (SharedLedger, SharedLedger, KeyPair) {
    let (a, alice) = fixture("difftest");
    let (b, _) = fixture("difftest");
    for shared in [&a, &b] {
        for i in 0..8u64 {
            shared
                .append(TxRequest::signed(
                    &alice,
                    format!("pre-{i}").into_bytes(),
                    vec!["pre".into()],
                    i,
                ))
                .unwrap();
        }
    }
    assert_eq!(a.journal_root(), b.journal_root(), "seeded ledgers must be identical");
    (a, b, alice)
}

fn server_config() -> ServerConfig {
    ServerConfig { registry: Arc::new(Registry::new()), ..ServerConfig::default() }
}

/// One request → one raw response body (frame header stripped).
fn roundtrip(stream: &mut TcpStream, request: &Request) -> Vec<u8> {
    write_frame(stream, &request.to_wire()).unwrap();
    read_frame(stream, DEFAULT_MAX_FRAME).unwrap()
}

#[test]
fn same_requests_same_bytes_across_transports() {
    let (shared_a, shared_b, alice) = seeded_pair();
    let anchor = shared_a.anchor();
    let (tx_hash, proof) = shared_a.prove_existence(1, &anchor).unwrap();

    let threaded = Ledgerd::start(shared_a, server_config()).unwrap();
    let event = EventLedgerd::start(
        shared_b,
        EventConfig { server: server_config(), ..EventConfig::default() },
    )
    .unwrap();

    // The mix covers every request kind except Stats (live telemetry
    // differs by transport) — reads, proofs, verification, appends,
    // batches, and a typed error.
    let mix: Vec<Request> = vec![
        Request::Hello,
        Request::GetTx(2),
        Request::ListTx("pre".into()),
        Request::GetProof { jsn: 1, anchor: anchor.clone() },
        Request::GetClueProof("pre".into()),
        Request::Verify {
            jsn: 1,
            tx_hash,
            proof: proof.clone(),
            anchor: anchor.clone(),
        },
        Request::GetAnchor,
        Request::GetBlockFeed { from_height: 0, max_blocks: 16 },
        Request::Append(TxRequest::signed(&alice, b"live-0".to_vec(), vec!["live".into()], 8)),
        Request::Append(TxRequest::signed(&alice, b"live-1".to_vec(), vec!["live".into()], 9)),
        Request::AppendBatch(
            (10..13u64)
                .map(|i| {
                    TxRequest::signed(&alice, format!("batch-{i}").into_bytes(), vec![], i)
                })
                .collect(),
        ),
        Request::GetProofBatch { jsns: vec![0, 1, 2], anchor: anchor.clone() },
        Request::ListTx("live".into()),
        Request::GetTx(999), // typed NotFound, not a hangup
        Request::GetAnchor,  // state advanced identically on both
    ];

    let mut conn_t = TcpStream::connect(threaded.local_addr()).unwrap();
    let mut conn_e = TcpStream::connect(event.local_addr()).unwrap();
    for stream in [&conn_t, &conn_e] {
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    }

    for (i, request) in mix.iter().enumerate() {
        let from_threaded = roundtrip(&mut conn_t, request);
        let from_event = roundtrip(&mut conn_e, request);
        assert_eq!(
            from_threaded, from_event,
            "request #{i} ({request:?}) answered differently:\n  threaded: {:?}\n  event:    {:?}",
            Response::from_wire(&from_threaded),
            Response::from_wire(&from_event),
        );
        // And the shared bytes are a well-formed response.
        Response::from_wire(&from_threaded).expect("decodable response");
    }

    drop(conn_t);
    drop(conn_e);
    threaded.shutdown();
    event.shutdown();
}
