//! Differential transport test: the thread-per-connection server and
//! the epoll event-loop server must produce **byte-identical** response
//! frames for the same request mix against identically-seeded ledgers.
//!
//! Both transports route through the same `RequestService`, so this is
//! an invariant by construction — the test pins it against regressions
//! in either transport's framing, dispatch, or ordering. `Stats` is
//! excluded: its payload is live telemetry (latencies, loop counters)
//! and legitimately differs between transports.

use ledgerdb::core::{LedgerConfig, LedgerDb, MemberRegistry, SharedLedger, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::wire::Wire;
use ledgerdb::server::protocol::{
    read_frame, write_frame, write_traced_frame, Request, Response, SpanRecord,
    DEFAULT_MAX_FRAME, TRACED_PROTOCOL_VERSION,
};
use ledgerdb::server::{EventConfig, EventLedgerd, Ledgerd, ServerConfig};
use ledgerdb::telemetry::Registry;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn fixture(seed: &str) -> (SharedLedger, KeyPair) {
    let ca = CertificateAuthority::from_seed(seed.as_bytes());
    let alice = KeyPair::from_seed(format!("{seed}-alice").as_bytes());
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    let config = LedgerConfig { block_size: 4, fam_delta: 15, name: format!("diff-{seed}"), state_backend: Default::default() };
    let shared = SharedLedger::new(LedgerDb::new(config, registry));
    (shared, alice)
}

/// Two ledgers built from the SAME seed with the SAME pre-appends are
/// bit-identical; the request mix then runs against both servers.
fn seeded_pair() -> (SharedLedger, SharedLedger, KeyPair) {
    let (a, alice) = fixture("difftest");
    let (b, _) = fixture("difftest");
    for shared in [&a, &b] {
        for i in 0..8u64 {
            shared
                .append(TxRequest::signed(
                    &alice,
                    format!("pre-{i}").into_bytes(),
                    vec!["pre".into()],
                    i,
                ))
                .unwrap();
        }
    }
    assert_eq!(a.journal_root(), b.journal_root(), "seeded ledgers must be identical");
    (a, b, alice)
}

fn server_config() -> ServerConfig {
    ServerConfig { registry: Arc::new(Registry::new()), ..ServerConfig::default() }
}

/// One request → one raw response body (frame header stripped).
fn roundtrip(stream: &mut TcpStream, request: &Request) -> Vec<u8> {
    write_frame(stream, &request.to_wire()).unwrap();
    read_frame(stream, DEFAULT_MAX_FRAME).unwrap()
}

#[test]
fn same_requests_same_bytes_across_transports() {
    let (shared_a, shared_b, alice) = seeded_pair();
    let anchor = shared_a.anchor();
    let (tx_hash, proof) = shared_a.prove_existence(1, &anchor).unwrap();

    let threaded = Ledgerd::start(shared_a, server_config()).unwrap();
    let event = EventLedgerd::start(
        shared_b,
        EventConfig { server: server_config(), ..EventConfig::default() },
    )
    .unwrap();

    // The mix covers every request kind except Stats (live telemetry
    // differs by transport) — reads, proofs, verification, appends,
    // batches, and a typed error.
    let mix: Vec<Request> = vec![
        Request::Hello,
        Request::GetTx(2),
        Request::ListTx("pre".into()),
        Request::GetProof { jsn: 1, anchor: anchor.clone() },
        Request::GetClueProof("pre".into()),
        Request::Verify {
            jsn: 1,
            tx_hash,
            proof: proof.clone(),
            anchor: anchor.clone(),
        },
        Request::GetAnchor,
        Request::GetBlockFeed { from_height: 0, max_blocks: 16 },
        Request::Append(TxRequest::signed(&alice, b"live-0".to_vec(), vec!["live".into()], 8)),
        Request::Append(TxRequest::signed(&alice, b"live-1".to_vec(), vec!["live".into()], 9)),
        Request::AppendBatch(
            (10..13u64)
                .map(|i| {
                    TxRequest::signed(&alice, format!("batch-{i}").into_bytes(), vec![], i)
                })
                .collect(),
        ),
        Request::GetProofBatch { jsns: vec![0, 1, 2], anchor: anchor.clone() },
        Request::ListTx("live".into()),
        Request::GetTx(999), // typed NotFound, not a hangup
        Request::GetAnchor,  // state advanced identically on both
    ];

    let mut conn_t = TcpStream::connect(threaded.local_addr()).unwrap();
    let mut conn_e = TcpStream::connect(event.local_addr()).unwrap();
    for stream in [&conn_t, &conn_e] {
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    }

    for (i, request) in mix.iter().enumerate() {
        let from_threaded = roundtrip(&mut conn_t, request);
        let from_event = roundtrip(&mut conn_e, request);
        assert_eq!(
            from_threaded, from_event,
            "request #{i} ({request:?}) answered differently:\n  threaded: {:?}\n  event:    {:?}",
            Response::from_wire(&from_threaded),
            Response::from_wire(&from_event),
        );
        // And the shared bytes are a well-formed response.
        Response::from_wire(&from_threaded).expect("decodable response");
    }

    drop(conn_t);
    drop(conn_e);
    threaded.shutdown();
    event.shutdown();
}

/// Normalize a span tree to its shape: a sorted multiset of
/// `(name, parent_name)` edges. Ids and timestamps are
/// run-dependent; the structure is not.
fn span_shape(spans: &[SpanRecord]) -> Vec<(String, String)> {
    let name_of = |id: u64| -> String {
        if id == 0 {
            return "<root>".into();
        }
        spans
            .iter()
            .find(|s| s.span == id)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| "<missing>".into())
    };
    let mut shape: Vec<(String, String)> =
        spans.iter().map(|s| (s.name.clone(), name_of(s.parent))).collect();
    shape.sort();
    shape
}

/// Both transports must record the SAME span tree shape for the same
/// traced request: the trace plumbing (wire envelope → dispatch →
/// batcher → core stages) is transport-independent by construction,
/// and this pins it.
#[test]
fn traced_append_batch_records_the_same_span_tree_on_both_transports() {
    let (shared_a, shared_b, alice) = seeded_pair();
    let threaded = Ledgerd::start(shared_a, server_config()).unwrap();
    let event = EventLedgerd::start(
        shared_b,
        EventConfig { server: server_config(), ..EventConfig::default() },
    )
    .unwrap();

    let mut shapes = Vec::new();
    for (addr, trace_id) in
        [(threaded.local_addr(), 0x1111_2222_3333_4444u64), (event.local_addr(), 0x5555_6666_7777_8888u64)]
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let batch = Request::AppendBatch(
            (20..23u64)
                .map(|i| {
                    TxRequest::signed(&alice, format!("tr-{i}").into_bytes(), vec![], i)
                })
                .collect(),
        );
        write_traced_frame(&mut stream, trace_id, &batch.to_wire()).unwrap();
        let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        assert!(
            matches!(Response::from_wire(&body).unwrap(), Response::AppendBatchResult(_)),
            "traced batch must commit normally"
        );
        // Fetch the tree over the wire, untraced — the fetch itself
        // must not need tracing.
        let spans = match roundtrip(&mut stream, &Request::GetTrace(trace_id)) {
            body => match Response::from_wire(&body).unwrap() {
                Response::Trace(spans) => spans,
                other => panic!("expected Trace response, got {other:?}"),
            },
        };
        let root = spans.iter().find(|s| s.parent == 0).expect("a root span");
        assert_eq!(root.name, "append_batch", "root span is the request kind");
        shapes.push(span_shape(&spans));
    }
    assert_eq!(
        shapes[0], shapes[1],
        "threaded and event-loop transports recorded different span trees"
    );
    threaded.shutdown();
    event.shutdown();
}

/// Hostile wire inputs around the trace envelope must be rejected
/// cleanly — a typed error frame then a hangup, byte-identical across
/// transports. Case 1: an old-version (v1) client that mistakenly
/// prepends envelope bytes — they garble into the request body and
/// fail to decode. Case 2: a v2 frame whose envelope itself is
/// malformed (reserved flag bits set).
#[test]
fn hostile_trace_envelopes_are_rejected_identically_across_transports() {
    let (shared_a, shared_b, _alice) = seeded_pair();
    let threaded = Ledgerd::start(shared_a, server_config()).unwrap();
    let event = EventLedgerd::start(
        shared_b,
        EventConfig { server: server_config(), ..EventConfig::default() },
    )
    .unwrap();

    // Envelope bytes inside a v1 frame: flags=1 + 8-byte id, then a
    // valid request — the flags byte reads as an Append tag and the
    // trace id garbles the TxRequest decode.
    let mut enveloped_v1 = vec![1u8];
    enveloped_v1.extend_from_slice(&0xDEAD_BEEF_DEAD_BEEFu64.to_be_bytes());
    enveloped_v1.extend_from_slice(&Request::GetAnchor.to_wire());

    // A v2 frame with reserved envelope flag bits set.
    let mut bad_envelope_frame = Vec::new();
    bad_envelope_frame.push(TRACED_PROTOCOL_VERSION);
    bad_envelope_frame.extend_from_slice(&9u32.to_be_bytes());
    bad_envelope_frame.push(0xFF); // reserved flag bits
    bad_envelope_frame.extend_from_slice(&1u64.to_be_bytes());

    for case in 0..2 {
        let mut replies = Vec::new();
        for addr in [threaded.local_addr(), event.local_addr()] {
            use std::io::{Read, Write};
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            match case {
                0 => write_frame(&mut stream, &enveloped_v1).unwrap(),
                _ => stream.write_all(&bad_envelope_frame).unwrap(),
            }
            let body = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
            assert!(
                matches!(Response::from_wire(&body).unwrap(), Response::Error(_)),
                "case {case}: hostile frame must draw a typed error"
            );
            // And the server hangs up: the next read sees EOF.
            let mut probe = [0u8; 1];
            assert_eq!(
                stream.read(&mut probe).unwrap_or(0),
                0,
                "case {case}: server must hang up after the error frame"
            );
            replies.push(body);
        }
        assert_eq!(
            replies[0], replies[1],
            "case {case}: transports answered the hostile frame differently"
        );
    }
    threaded.shutdown();
    event.shutdown();
}
