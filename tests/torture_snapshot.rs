//! Snapshot torture test: readers verify existence proofs against
//! published [`ReadSnapshot`]s while a writer concurrently appends,
//! seals, occults and purges.
//!
//! The invariant under torture (DESIGN §9): every proof produced from a
//! snapshot verifies against the `LedgerInfo` *that snapshot names* —
//! never against whatever the live ledger happens to hold by the time
//! the verification runs. Readers also exercise the `SharedLedger`
//! front-end so the hit path (sealed prefix) and the fallback path
//! (unsealed tail) both race the writer. Mutations surface only as
//! typed errors (`Occulted`, `Purged`, accumulator erasures) — never a
//! panic, a torn read, or a proof that verifies against the wrong root.

use ledgerdb::accumulator::fam::{FamTree, TrustedAnchor};
use ledgerdb::core::{
    LedgerConfig, LedgerDb, LedgerError, MemberRegistry, SharedLedger, TxRequest, VerifyLevel,
};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;
use ledgerdb::core::ledger::OccultMode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const ROUNDS: u64 = 12;
const PER_ROUND: u64 = 4;
const BLOCK_SIZE: u64 = 8;
const OCCULT_AT_ROUND: u64 = 5;
const OCCULT_TARGET: u64 = 3;
const PURGE_AT_ROUND: u64 = 9;
const PURGE_TO: u64 = 16;

/// Is this a mutation surfacing as its documented typed error?
fn tolerated(e: &LedgerError) -> bool {
    matches!(
        e,
        LedgerError::Occulted(_)
            | LedgerError::Purged(_)
            // Erased fam epochs / pre-pseudo-genesis proofs after purge.
            | LedgerError::Accumulator(_)
    )
}

#[test]
fn readers_verify_snapshots_while_writer_mutates() {
    let ca = CertificateAuthority::from_seed(b"torture-ca");
    let alice = KeyPair::from_seed(b"torture-alice");
    let dba = KeyPair::from_seed(b"torture-dba");
    let regulator = KeyPair::from_seed(b"torture-regulator");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
    registry.register(ca.issue("regulator", Role::Regulator, regulator.public())).unwrap();
    let ledger = LedgerDb::new(
        // A small δ keeps per-seal snapshot freezes cheap and rolls the
        // fam through several sealed epochs during the run.
        LedgerConfig { block_size: BLOCK_SIZE, fam_delta: 4, name: "torture-snapshot".into(), state_backend: Default::default() },
        registry,
    );
    let shared = SharedLedger::new(ledger);

    // Client-side signing is the slow part (and not under test): sign
    // everything up front so the writer loop is seal/mutate-bound.
    let mut requests: Vec<TxRequest> = (0..ROUNDS * PER_ROUND)
        .map(|i| {
            TxRequest::signed(
                &alice,
                format!("torture-{i}").into_bytes(),
                vec![format!("clue-{}", i % 3)],
                i,
            )
        })
        .collect();
    requests.reverse(); // pop() in jsn order

    let done = AtomicBool::new(false);
    let snapshot_proofs = AtomicU64::new(0);
    let shared_reads = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Writer: append, auto-seal, occult mid-run, purge later.
        let w = shared.clone();
        let (done_ref, alice_ref) = (&done, &alice);
        let (dba_ref, reg_ref) = (&dba, &regulator);
        let mut requests = requests;
        scope.spawn(move || {
            for round in 0..ROUNDS {
                for _ in 0..PER_ROUND {
                    w.append(requests.pop().unwrap()).unwrap();
                }
                if round == OCCULT_AT_ROUND {
                    let digest = w.with_read(|l| l.occult_approval_digest(OCCULT_TARGET));
                    let mut ms = MultiSignature::new();
                    ms.add(dba_ref, &digest);
                    ms.add(reg_ref, &digest);
                    w.occult(OCCULT_TARGET, ms, OccultMode::Async).unwrap();
                }
                if round == PURGE_AT_ROUND {
                    let digest = w.with_read(|l| l.purge_approval_digest(PURGE_TO));
                    let mut ms = MultiSignature::new();
                    ms.add(dba_ref, &digest);
                    ms.add(alice_ref, &digest); // every member with journals before the cut
                    w.with_write(|l| l.purge(PURGE_TO, ms, &[], true)).unwrap();
                }
            }
            w.seal_block();
            done_ref.store(true, Ordering::Release);
        });

        // Readers: race the writer over snapshots and the shared API.
        for reader in 0..3u64 {
            let r = shared.clone();
            let done_ref = &done;
            let (proofs_ref, reads_ref) = (&snapshot_proofs, &shared_reads);
            scope.spawn(move || {
                let anchor = TrustedAnchor::default();
                let mut rng = 0x9e3779b97f4a7c15u64.wrapping_mul(reader + 1);
                while !done_ref.load(Ordering::Acquire) {
                    let snap = r.snapshot();
                    // Internal consistency: the snapshot's fam root IS
                    // the journal root of the LedgerInfo it names.
                    assert_eq!(snap.journal_root(), snap.info().journal_root);
                    if snap.journal_count() == 0 {
                        continue;
                    }
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let jsn = rng % snap.journal_count();

                    // Snapshot-pinned proof: must verify against the
                    // snapshot's own info, no matter how far the live
                    // ledger has moved on (or purged) meanwhile.
                    if snap.can_prove() {
                        match snap.prove_existence(jsn, &anchor) {
                            Ok((tx_hash, proof)) => {
                                FamTree::verify(
                                    &snap.info().journal_root,
                                    &anchor,
                                    &tx_hash,
                                    &proof,
                                )
                                .expect("snapshot proof verifies against its own info");
                                snap.verify_existence(
                                    jsn,
                                    &tx_hash,
                                    &proof,
                                    &anchor,
                                    VerifyLevel::Client,
                                )
                                .expect("snapshot self-verification");
                                proofs_ref.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => assert!(tolerated(&e), "untyped proof failure: {e}"),
                        }
                    }
                    match snap.get_tx(jsn) {
                        Ok(journal) => assert_eq!(journal.jsn, jsn),
                        Err(e) => assert!(tolerated(&e), "untyped get_tx failure: {e}"),
                    }

                    // Shared front-end: hit the snapshot path for sealed
                    // jsns and the locked fallback for tail jsns.
                    match r.prove_existence(jsn, &anchor) {
                        Ok((tx_hash, proof)) => {
                            r.verify_existence(jsn, &tx_hash, &proof, &anchor, VerifyLevel::Server)
                                .expect("server-level check of a fresh proof");
                            reads_ref.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => assert!(tolerated(&e), "untyped shared proof failure: {e}"),
                    }
                    match r.get_tx(jsn) {
                        Ok((journal, _payload)) => assert_eq!(journal.jsn, jsn),
                        Err(e) => assert!(tolerated(&e), "untyped shared get_tx failure: {e}"),
                    }
                    let _ = r.list_tx(&format!("clue-{}", jsn % 3));
                }
            });
        }
    });

    // The run exercised both paths for real.
    assert!(snapshot_proofs.load(Ordering::Relaxed) > 0, "no snapshot proof ever ran");
    assert!(shared_reads.load(Ordering::Relaxed) > 0, "no shared read ever ran");

    // Post-torture ground truth: occult and purge landed, the tail
    // sealed, and the final snapshot agrees with the live ledger.
    assert_eq!(shared.journal_count(), ROUNDS * PER_ROUND + 2); // + occult & purge journals
    assert!(matches!(shared.get_tx(OCCULT_TARGET), Err(LedgerError::Occulted(_))));
    assert!(matches!(shared.get_tx(5), Err(LedgerError::Purged(_))));
    let snap = shared.snapshot();
    assert_eq!(snap.journal_count(), shared.journal_count());
    assert_eq!(snap.journal_root(), shared.journal_root());
    let anchor = TrustedAnchor::default();
    let last = snap.journal_count() - 1;
    let (tx_hash, proof) = snap.prove_existence(last, &anchor).unwrap();
    FamTree::verify(&snap.info().journal_root, &anchor, &tx_hash, &proof).unwrap();
}
