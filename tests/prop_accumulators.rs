//! Property-based tests for the accumulator structures: Shrubs (including
//! batch proofs), fam, tim and bim, cross-checked against the naive
//! binary Merkle reference where shapes coincide.
//!
//! Cases come from the deterministic in-repo harness
//! (`ledgerdb_bench::cases`); see that module for the seeding scheme.

use ledgerdb::accumulator::binary::{merkle_prove, merkle_root, merkle_verify};
use ledgerdb::accumulator::fam::{FamTree, TrustedAnchor};
use ledgerdb::accumulator::shrubs::Shrubs;
use ledgerdb::accumulator::tim::TimAccumulator;
use ledgerdb::accumulator::BimChain;
use ledgerdb::crypto::{hash_leaf, Digest};
use ledgerdb_bench::cases::run_cases;

fn digests(seeds: &[u8]) -> Vec<Digest> {
    seeds.iter().enumerate().map(|(i, s)| hash_leaf(&[*s, i as u8, (i >> 8) as u8])).collect()
}

/// Every leaf of a Shrubs accumulator proves against the root.
#[test]
fn shrubs_all_leaves_prove() {
    run_cases("shrubs all leaves prove", 64, |g| {
        let leaves = digests(&g.bytes(1..=199));
        let mut s = Shrubs::new();
        for l in &leaves {
            s.append(*l);
        }
        let root = s.root();
        for (i, l) in leaves.iter().enumerate() {
            let proof = s.prove(i as u64).unwrap();
            assert!(Shrubs::verify(&root, l, &proof).is_ok());
        }
    });
}

/// A proof for leaf i never verifies a different leaf digest.
#[test]
fn shrubs_rejects_wrong_leaf() {
    run_cases("shrubs rejects wrong leaf", 64, |g| {
        let leaves = digests(&g.bytes(2..=99));
        let mut s = Shrubs::new();
        for l in &leaves {
            s.append(*l);
        }
        let root = s.root();
        let i = g.below(leaves.len() as u64);
        let proof = s.prove(i).unwrap();
        let wrong = hash_leaf(b"definitely wrong");
        assert!(Shrubs::verify(&root, &wrong, &proof).is_err());
    });
}

/// The frontier always bags to the root, after any number of appends.
#[test]
fn shrubs_frontier_invariant() {
    run_cases("shrubs frontier invariant", 64, |g| {
        let leaves = digests(&g.bytes(1..=299));
        let mut s = Shrubs::new();
        for l in &leaves {
            s.append(*l);
            assert_eq!(Shrubs::root_of_frontier(&s.frontier()), s.root());
        }
    });
}

/// Batch proofs verify for arbitrary index subsets, and carry no more
/// digests than the per-leaf proofs combined.
#[test]
fn shrubs_batch_subset() {
    run_cases("shrubs batch subset", 64, |g| {
        let leaves = digests(&g.bytes(2..=119));
        let mut s = Shrubs::new();
        for l in &leaves {
            s.append(*l);
        }
        let root = s.root();
        let picks = g.usize_in(1..=9);
        let mut indices: Vec<u64> =
            (0..picks).map(|_| g.below(leaves.len() as u64)).collect();
        indices.sort_unstable();
        indices.dedup();
        let proof = s.prove_batch(&indices).unwrap();
        let entries: Vec<(u64, Digest)> =
            indices.iter().map(|&i| (i, leaves[i as usize])).collect();
        assert!(Shrubs::verify_batch(&root, &entries, &proof).is_ok());
        let individual: usize = indices.iter().map(|&i| s.prove(i).unwrap().len()).sum();
        assert!(proof.len() <= individual);
    });
}

/// fam: every journal proves against the live root with or without an
/// anchor, across arbitrary δ and sizes.
#[test]
fn fam_proofs_hold() {
    run_cases("fam proofs hold", 64, |g| {
        let delta = g.in_range(1..=5) as u32;
        let leaves = digests(&g.bytes(1..=149));
        let mut fam = FamTree::new(delta);
        for l in &leaves {
            fam.append(*l);
        }
        let root = fam.root();
        let empty = TrustedAnchor::default();
        let fresh = fam.anchor();
        for (i, l) in leaves.iter().enumerate() {
            let p1 = fam.prove(i as u64, &empty).unwrap();
            assert!(FamTree::verify(&root, &empty, l, &p1).is_ok());
            let p2 = fam.prove(i as u64, &fresh).unwrap();
            assert!(FamTree::verify(&root, &fresh, l, &p2).is_ok());
        }
    });
}

/// fam and tim accumulate the same leaves to different roots, but both
/// commit every leaf (no silent drops).
#[test]
fn fam_and_tim_commit_all() {
    run_cases("fam and tim commit all", 64, |g| {
        let leaves = digests(&g.bytes(1..=99));
        let mut fam = FamTree::new(3);
        let mut tim = TimAccumulator::new();
        for l in &leaves {
            fam.append(*l);
            tim.append(*l);
        }
        assert_eq!(fam.journal_count(), leaves.len() as u64);
        assert_eq!(tim.len(), leaves.len() as u64);
    });
}

/// The binary reference tree: proofs verify and reject tampering.
#[test]
fn binary_merkle_sound() {
    run_cases("binary merkle sound", 64, |g| {
        let leaves = digests(&g.bytes(1..=63));
        let root = merkle_root(&leaves);
        for i in 0..leaves.len() {
            let path = merkle_prove(&leaves, i).unwrap();
            assert!(merkle_verify(&root, &leaves[i], &path));
            assert!(
                !merkle_verify(&root, &hash_leaf(b"bad"), &path)
                    || leaves[i] == hash_leaf(b"bad")
            );
        }
    });
}

/// bim: SPV proofs hold for every sealed transaction at any block size.
#[test]
fn bim_spv_sound() {
    run_cases("bim spv sound", 64, |g| {
        let block_size = g.usize_in(1..=19);
        let txs = digests(&g.bytes(1..=99));
        let mut chain = BimChain::new(block_size);
        for t in &txs {
            chain.append(*t);
        }
        chain.seal_block();
        assert!(BimChain::validate_header_chain(chain.headers()));
        for (i, t) in txs.iter().enumerate() {
            let proof = chain.prove(i as u64).unwrap();
            assert!(BimChain::verify(chain.headers(), t, &proof).is_ok());
        }
    });
}

/// Appending to fam never invalidates the relationship between a
/// fresh proof and the fresh root (proofs are snapshot-consistent).
#[test]
fn fam_snapshot_consistency() {
    run_cases("fam snapshot consistency", 64, |g| {
        let leaves = digests(&g.bytes(10..=79));
        let extra = g.bytes(1..=19);
        let mut fam = FamTree::new(3);
        for l in &leaves {
            fam.append(*l);
        }
        let empty = TrustedAnchor::default();
        let old_proof = fam.prove(0, &empty).unwrap();
        let old_root = fam.root();
        assert!(FamTree::verify(&old_root, &empty, &leaves[0], &old_proof).is_ok());
        for l in digests(&extra) {
            fam.append(l);
        }
        // Old proof against the new root must fail; a new proof succeeds.
        let new_root = fam.root();
        assert!(FamTree::verify(&new_root, &empty, &leaves[0], &old_proof).is_err());
        let new_proof = fam.prove(0, &empty).unwrap();
        assert!(FamTree::verify(&new_root, &empty, &leaves[0], &new_proof).is_ok());
    });
}
