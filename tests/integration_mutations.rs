//! Integration tests for the verifiable mutations (purge §III-A2, occult
//! §III-A3) and the threat scenarios of §II-B.

use ledgerdb::core::{
    audit_ledger, AuditConfig, LedgerConfig, LedgerDb, LedgerError, MemberRegistry, OccultMode,
    TxRequest, VerifyLevel,
};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;

struct World {
    ledger: LedgerDb,
    alice: KeyPair,
    bob: KeyPair,
    dba: KeyPair,
    regulator: KeyPair,
}

fn world() -> World {
    let ca = CertificateAuthority::from_seed(b"mut-ca");
    let alice = KeyPair::from_seed(b"mut-alice");
    let bob = KeyPair::from_seed(b"mut-bob");
    let dba = KeyPair::from_seed(b"mut-dba");
    let regulator = KeyPair::from_seed(b"mut-reg");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    registry.register(ca.issue("bob", Role::User, bob.public())).unwrap();
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
    registry.register(ca.issue("reg", Role::Regulator, regulator.public())).unwrap();
    let config = LedgerConfig { block_size: 4, fam_delta: 5, name: "mut".into(), state_backend: Default::default() };
    World { ledger: LedgerDb::new(config, registry), alice, bob, dba, regulator }
}

fn populate(w: &mut World, n: u64) {
    for i in 0..n {
        let keys = if i % 3 == 0 { &w.bob } else { &w.alice };
        let req = TxRequest::signed(
            keys,
            format!("record-{i}").into_bytes(),
            vec![format!("c{}", i % 4)],
            i,
        );
        w.ledger.append(req).unwrap();
    }
    w.ledger.seal_block();
}

#[test]
fn occult_then_audit_green() {
    let mut w = world();
    populate(&mut w, 20);
    let digest = w.ledger.occult_approval_digest(5);
    let mut ms = MultiSignature::new();
    ms.add(&w.dba, &digest);
    ms.add(&w.regulator, &digest);
    w.ledger.occult(5, ms, OccultMode::Sync).unwrap();
    w.ledger.seal_block();
    let report = audit_ledger(&w.ledger, &AuditConfig::default()).unwrap();
    assert_eq!(report.occult_journals, 1);
}

#[test]
fn occult_preserves_subsequent_verification() {
    // Protocol 2: the retained hash stands in for the journal, so the
    // rest of the ledger still verifies.
    let mut w = world();
    populate(&mut w, 20);
    let digest = w.ledger.occult_approval_digest(3);
    let mut ms = MultiSignature::new();
    ms.add(&w.dba, &digest);
    ms.add(&w.regulator, &digest);
    w.ledger.occult(3, ms, OccultMode::Sync).unwrap();
    w.ledger.seal_block();

    let anchor = w.ledger.anchor();
    for jsn in 0..w.ledger.journal_count() {
        let (tx_hash, proof) = w.ledger.prove_existence(jsn, &anchor).unwrap();
        w.ledger
            .verify_existence(jsn, &tx_hash, &proof, &anchor, VerifyLevel::Client)
            .unwrap();
    }
}

#[test]
fn occult_without_regulator_rejected_and_audit_catches_forgery() {
    let mut w = world();
    populate(&mut w, 8);
    // Only the DBA signs: Prerequisite 2 unmet.
    let digest = w.ledger.occult_approval_digest(2);
    let mut ms = MultiSignature::new();
    ms.add(&w.dba, &digest);
    assert!(matches!(
        w.ledger.occult(2, ms, OccultMode::Sync),
        Err(LedgerError::InsufficientSignatures(_))
    ));
}

#[test]
fn async_occult_erases_only_after_reorganize() {
    let mut w = world();
    populate(&mut w, 8);
    let digest = w.ledger.occult_approval_digest(1);
    let mut ms = MultiSignature::new();
    ms.add(&w.dba, &digest);
    ms.add(&w.regulator, &digest);
    w.ledger.occult(1, ms, OccultMode::Async).unwrap();
    // Blocked immediately...
    assert!(matches!(w.ledger.get_tx(1), Err(LedgerError::Occulted(1))));
    // ...erased only after the reorganization pass.
    assert_eq!(w.ledger.reorganize().unwrap(), 1);
    assert_eq!(w.ledger.reorganize().unwrap(), 0, "second pass is a no-op");
}

#[test]
fn purge_then_continue_then_audit() {
    let mut w = world();
    populate(&mut w, 24);
    let purge_to = 12;
    let digest = w.ledger.purge_approval_digest(purge_to);
    let mut ms = MultiSignature::new();
    ms.add(&w.dba, &digest);
    ms.add(&w.alice, &digest);
    ms.add(&w.bob, &digest);
    w.ledger.purge(purge_to, ms, &[2, 7], false).unwrap();

    // Business continues after the purge.
    for i in 100..110u64 {
        let req = TxRequest::signed(&w.alice, vec![i as u8], vec!["post".into()], i);
        w.ledger.append(req).unwrap();
    }
    w.ledger.seal_block();

    // Survivors retrievable, purged not.
    assert!(w.ledger.survival().contains(2));
    assert!(w.ledger.survival().contains(7));
    assert!(matches!(w.ledger.get_tx(3), Err(LedgerError::Purged(3))));
    assert!(w.ledger.get_tx(15).is_ok());

    let report = audit_ledger(&w.ledger, &AuditConfig::default()).unwrap();
    assert_eq!(report.purge_journals, 1);
}

#[test]
fn double_purge_must_move_forward() {
    let mut w = world();
    populate(&mut w, 16);
    let approve = |w: &World, to: u64| {
        let digest = w.ledger.purge_approval_digest(to);
        let mut ms = MultiSignature::new();
        ms.add(&w.dba, &digest);
        ms.add(&w.alice, &digest);
        ms.add(&w.bob, &digest);
        ms
    };
    let ms = approve(&w, 8);
    w.ledger.purge(8, ms, &[], false).unwrap();
    // A second purge at or before the first point is invalid.
    let ms = approve(&w, 8);
    assert!(matches!(w.ledger.purge(8, ms, &[], false), Err(LedgerError::BadPurgePoint(8))));
    // A later purge point is fine.
    let ms = approve(&w, 12);
    w.ledger.purge(12, ms, &[], false).unwrap();
    assert_eq!(w.ledger.pseudo_genesis().unwrap().purge_to, 12);
}

#[test]
fn purge_and_occult_compose() {
    let mut w = world();
    populate(&mut w, 20);
    // Occult 15 first, then purge to 10: both mutations on one ledger.
    let od = w.ledger.occult_approval_digest(15);
    let mut oms = MultiSignature::new();
    oms.add(&w.dba, &od);
    oms.add(&w.regulator, &od);
    w.ledger.occult(15, oms, OccultMode::Sync).unwrap();

    let pd = w.ledger.purge_approval_digest(10);
    let mut pms = MultiSignature::new();
    pms.add(&w.dba, &pd);
    pms.add(&w.alice, &pd);
    pms.add(&w.bob, &pd);
    w.ledger.purge(10, pms, &[], true).unwrap();
    w.ledger.seal_block();

    assert!(matches!(w.ledger.get_tx(15), Err(LedgerError::Occulted(15))));
    assert!(matches!(w.ledger.get_tx(5), Err(LedgerError::Purged(5))));
    let report = audit_ledger(&w.ledger, &AuditConfig::default()).unwrap();
    assert_eq!(report.occult_journals, 1);
    assert_eq!(report.purge_journals, 1);
}

#[test]
fn audit_detects_missing_required_purge_signer() {
    // threat-B/C: LSP colludes to purge without Bob's consent. The purge
    // API refuses; even a hand-rolled multisig missing Bob fails `covers`.
    let mut w = world();
    populate(&mut w, 12);
    let digest = w.ledger.purge_approval_digest(6);
    let mut ms = MultiSignature::new();
    ms.add(&w.dba, &digest);
    ms.add(&w.alice, &digest);
    // Bob appended journals before jsn 6 (jsn 0 and 3) but did not sign.
    assert!(matches!(
        w.ledger.purge(6, ms, &[], false),
        Err(LedgerError::InsufficientSignatures(_))
    ));
}
