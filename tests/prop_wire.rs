//! Property-based tests for the wire codec: round trips for every
//! transportable type under arbitrary content, and total decoding on
//! arbitrary byte soup (no panics, ever).
//!
//! Cases come from the deterministic in-repo harness
//! (`ledgerdb_bench::cases`); see that module for the seeding scheme.

use ledgerdb::accumulator::fam::{FamProof, FamTree, TrustedAnchor};
use ledgerdb::accumulator::shrubs::{Shrubs, ShrubsBatchProof, ShrubsProof};
use ledgerdb::clue::cm_tree::{ClueProof, CmTree};
use ledgerdb::core::{Block, Journal, LedgerSnapshot, Receipt};
use ledgerdb::crypto::wire::Wire;
use ledgerdb::crypto::{hash_leaf, Digest};
use ledgerdb::mpt::{Mpt, MptProof};
use ledgerdb::timesvc::tsa::TimeAttestation;
use ledgerdb_bench::cases::run_cases;

/// Shrubs/fam proofs round trip for arbitrary tree sizes and targets.
#[test]
fn accumulator_proofs_round_trip() {
    run_cases("accumulator proofs round trip", 48, |g| {
        let n = g.in_range(1..=119);
        let delta = g.in_range(1..=5) as u32;
        let leaves: Vec<Digest> = (0..n).map(|i| hash_leaf(&i.to_be_bytes())).collect();
        let mut s = Shrubs::new();
        let mut fam = FamTree::new(delta);
        for l in &leaves {
            s.append(*l);
            fam.append(*l);
        }
        let i = g.below(n);
        let sp = s.prove(i).unwrap();
        let decoded = ShrubsProof::from_wire(&sp.to_wire()).unwrap();
        assert!(Shrubs::verify(&s.root(), &leaves[i as usize], &decoded).is_ok());

        let anchor = TrustedAnchor::default();
        let fp = fam.prove(i, &anchor).unwrap();
        let decoded = FamProof::from_wire(&fp.to_wire()).unwrap();
        assert!(FamTree::verify(&fam.root(), &anchor, &leaves[i as usize], &decoded).is_ok());

        let bp = s.prove_batch(&[i]).unwrap();
        let decoded = ShrubsBatchProof::from_wire(&bp.to_wire()).unwrap();
        assert!(Shrubs::verify_batch(&s.root(), &[(i, leaves[i as usize])], &decoded).is_ok());
    });
}

/// MPT and clue proofs round trip under arbitrary key populations.
#[test]
fn trie_and_clue_proofs_round_trip() {
    run_cases("trie and clue proofs round trip", 48, |g| {
        let n = g.in_range(1..=59);
        let mut mpt = Mpt::new();
        for i in 0..n {
            let k = ledgerdb::crypto::sha3_256(&i.to_be_bytes());
            mpt.insert(k.as_bytes(), i.to_be_bytes().to_vec());
        }
        let i = g.below(n);
        let k = ledgerdb::crypto::sha3_256(&i.to_be_bytes());
        let proof = mpt.prove(k.as_bytes()).unwrap();
        let decoded = MptProof::from_wire(&proof.to_wire()).unwrap();
        assert!(ledgerdb::mpt::verify_proof(&mpt.root_hash(), &decoded).is_ok());

        let mut cm = CmTree::new();
        for j in 0..n {
            cm.append("k", j, hash_leaf(&j.to_be_bytes()));
        }
        let cp = cm.prove_all("k").unwrap();
        let decoded = ClueProof::from_wire(&cp.to_wire()).unwrap();
        assert!(CmTree::verify_client(&cm.root(), &decoded).is_ok());
    });
}

/// Arbitrary byte soup never panics any decoder — it errors or, for
/// self-delimiting inputs that happen to parse, verifies falsely.
#[test]
fn decoders_are_total() {
    run_cases("decoders are total", 48, |g| {
        let bytes = g.bytes(0..=599);
        let _ = ShrubsProof::from_wire(&bytes);
        let _ = ShrubsBatchProof::from_wire(&bytes);
        let _ = FamProof::from_wire(&bytes);
        let _ = MptProof::from_wire(&bytes);
        let _ = ClueProof::from_wire(&bytes);
        let _ = TimeAttestation::from_wire(&bytes);
        let _ = Journal::from_wire(&bytes);
        let _ = Block::from_wire(&bytes);
        let _ = Receipt::from_wire(&bytes);
        let _ = LedgerSnapshot::from_wire(&bytes);
    });
}

/// Wire encodings are canonical: encode(decode(encode(x))) == encode(x).
#[test]
fn encoding_is_stable() {
    run_cases("encoding is stable", 48, |g| {
        let n = g.in_range(1..=39);
        let mut s = Shrubs::new();
        for i in 0..n {
            s.append(hash_leaf(&i.to_be_bytes()));
        }
        let proof = s.prove(n - 1).unwrap();
        let once = proof.to_wire();
        let twice = ShrubsProof::from_wire(&once).unwrap().to_wire();
        assert_eq!(once, twice);
    });
}
