//! Differential determinism suite for the sharded deployment.
//!
//! Three invariants pin the tentpole contract:
//!
//! 1. **K=1 equivalence** — a `RequestService` serving
//!    `ShardedLedger::single` must produce responses byte-identical to
//!    direct operations on an identically-seeded plain `SharedLedger`:
//!    same acks, same unpacked jsns, same proofs, same blocks. The
//!    sharded dispatch at K=1 is the identity, not a near-miss.
//! 2. **Run determinism** — the same schedule through two K=4
//!    deployments yields byte-identical per-shard fingerprints.
//! 3. **Interleaving independence** — reordering appends *across*
//!    shards (preserving each shard's own order) changes nothing: the
//!    per-shard fingerprints and the composed top root are identical.
//!
//! Occults and a purge ride in the schedule so mutation paths are
//! pinned too, not just the append path.

use ledgerdb::core::{
    route_clue_str, LedgerConfig, LedgerDb, MemberRegistry, OccultMode, ShardedLedger,
    SharedLedger, TxRequest,
};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;
use ledgerdb::crypto::wire::Wire;
use ledgerdb::server::protocol::{Request, Response};
use ledgerdb::server::{RequestService, ServerConfig};
use ledgerdb::telemetry::Registry;

struct Members {
    alice: KeyPair,
    dba: KeyPair,
    regulator: KeyPair,
}

fn members() -> (MemberRegistry, Members) {
    let ca = CertificateAuthority::from_seed(b"shard-diff-ca");
    let alice = KeyPair::from_seed(b"shard-diff-alice");
    let dba = KeyPair::from_seed(b"shard-diff-dba");
    let regulator = KeyPair::from_seed(b"shard-diff-reg");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
    registry.register(ca.issue("reg", Role::Regulator, regulator.public())).unwrap();
    (registry, Members { alice, dba, regulator })
}

fn shard_ledger(block_size: u64) -> SharedLedger {
    let (registry, _) = members();
    let config = LedgerConfig { block_size, fam_delta: 6, name: "shard-diff".into(), state_backend: Default::default() };
    SharedLedger::new(LedgerDb::new(config, registry))
}

fn sharded(k: usize, block_size: u64) -> ShardedLedger {
    ShardedLedger::new((0..k).map(|_| shard_ledger(block_size)).collect()).unwrap()
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A deterministic clue-spread transaction schedule. Every tx carries a
/// clue, so routing is by clue hash and reproducible without a ledger.
fn schedule(m: &Members, seed: u64, n: u64) -> Vec<TxRequest> {
    let mut rng = XorShift(seed.max(1));
    (0..n)
        .map(|i| {
            let payload: Vec<u8> = (0..(rng.next() % 120)).map(|_| (rng.next() & 0xFF) as u8).collect();
            let clue = format!("clue-{}", rng.next() % 17);
            TxRequest::signed(&m.alice, payload, vec![clue], seed << 20 | i)
        })
        .collect()
}

/// Every externally observable byte of one shard: roots, the wire-coded
/// block chain, receipts, and a proof sample.
fn shard_fingerprint(shared: &SharedLedger) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&shared.journal_root().0);
    out.extend_from_slice(&shared.clue_root().0);
    out.extend_from_slice(&shared.anchor().to_wire());
    let blocks = shared.blocks_from(0, u64::MAX);
    for block in &blocks {
        out.extend_from_slice(&block.hash().0);
        out.extend_from_slice(&block.to_wire());
    }
    let sealed = blocks.last().map(|b| b.first_jsn + b.journal_count).unwrap_or(0);
    let anchor = shared.anchor();
    for jsn in 0..sealed {
        match shared.prove_existence(jsn, &anchor) {
            Ok((tx_hash, proof)) => {
                out.extend_from_slice(&tx_hash.0);
                out.extend_from_slice(&proof.to_wire());
            }
            Err(_) => out.push(0xEE), // occulted/purged: same on twins
        }
    }
    out
}

/// Deterministic occult + purge mix against shard 0 of a deployment
/// (or the only ledger at K=1), after `sealed` journals exist there.
fn mutate(shared: &SharedLedger, m: &Members) {
    let count = shared.journal_count();
    if count < 4 {
        return;
    }
    let occult_target = count / 2;
    shared.with_write(|l| {
        if !l.is_occulted(occult_target) {
            let digest = l.occult_approval_digest(occult_target);
            let mut ms = MultiSignature::new();
            ms.add(&m.dba, &digest);
            ms.add(&m.regulator, &digest);
            l.occult(occult_target, ms, OccultMode::Sync).unwrap();
        }
    });
    let purge_to = count / 4;
    if purge_to > 0 {
        shared.with_write(|l| {
            let digest = l.purge_approval_digest(purge_to);
            let mut ms = MultiSignature::new();
            ms.add(&m.dba, &digest);
            ms.add(&m.alice, &digest);
            l.purge(purge_to, ms, &[], false).unwrap();
        });
    }
}

#[test]
fn k1_sharded_service_is_byte_identical_to_a_plain_ledger() {
    let (_, m) = members();
    let txs = schedule(&m, 42, 40);

    // Twin A: the K=1 sharded service (what `Ledgerd::start` now runs).
    let service_ledger = shard_ledger(8);
    let config = ServerConfig { registry: std::sync::Arc::new(Registry::new()), ..ServerConfig::default() };
    let service =
        RequestService::start_sharded(ShardedLedger::single(service_ledger.clone()), &config);

    // Twin B: direct operations on a plain, identically seeded ledger.
    let direct = shard_ledger(8);

    for tx in &txs {
        let response = service.handle(Request::Append(tx.clone()));
        let ack = direct.append(tx.clone()).unwrap();
        match response {
            Response::Appended { jsn, tx_hash } => {
                assert_eq!(jsn, ack.jsn, "K=1 jsns must be unpacked (identity)");
                assert_eq!(tx_hash, ack.tx_hash);
            }
            other => panic!("append must ack, got {other:?}"),
        }
    }
    mutate(&service_ledger, &m);
    mutate(&direct, &m);
    service_ledger.seal_block();
    direct.seal_block();

    // Read-path responses must be byte-identical to ones recomputed
    // from the plain ledger.
    let anchor = direct.anchor();
    for jsn in 0..direct.journal_count() {
        let served = service.handle(Request::GetProof { jsn, anchor: anchor.clone() }).to_wire();
        let expected = match direct.prove_existence(jsn, &anchor) {
            Ok((tx_hash, proof)) => Response::Proof { tx_hash, proof }.to_wire(),
            Err(_) => {
                // Typed errors are compared structurally (code+detail
                // ride in the frame); served bytes must still be an
                // error frame, not a proof.
                assert!(
                    matches!(
                        Response::from_wire(&served).unwrap(),
                        Response::Error(_)
                    ),
                    "jsn {jsn}: mutated journal must serve a typed error"
                );
                continue;
            }
        };
        assert_eq!(served, expected, "jsn {jsn}: K=1 proof bytes diverged");
    }
    for clue in (0..17).map(|c| format!("clue-{c}")) {
        let served = service.handle(Request::ListTx(clue.clone())).to_wire();
        let expected = Response::TxList(direct.list_tx(&clue)).to_wire();
        assert_eq!(served, expected, "clue {clue}: K=1 list bytes diverged");
    }
    let served = service.handle(Request::GetBlockFeed { from_height: 0, max_blocks: u64::MAX });
    let expected = Response::BlockFeed(direct.blocks_from(0, u64::MAX)).to_wire();
    assert_eq!(served.to_wire(), expected, "K=1 block feed diverged");

    // And the two underlying ledgers are bit-identical.
    assert_eq!(
        shard_fingerprint(&service_ledger),
        shard_fingerprint(&direct),
        "K=1 sharded service must leave the ledger byte-identical to direct use"
    );
    service.finish_drain(true);
}

/// Replay `txs` into a K-shard deployment in the given order, then
/// mutate shard 0, seal everything, and cut one epoch.
fn replay(deployment: &ShardedLedger, m: &Members, txs: &[TxRequest]) {
    for tx in txs {
        let shard = deployment.route(tx);
        deployment.shard(shard).append(tx.clone()).unwrap();
    }
    mutate(deployment.shard(0), m);
    deployment.seal_all();
    deployment.ensure_epoch().expect("sealing produced anchorable heights");
}

#[test]
fn k4_runs_are_deterministic_and_interleaving_independent() {
    let (_, m) = members();
    let txs = schedule(&m, 7, 120);

    let run1 = sharded(4, 8);
    let run2 = sharded(4, 8);
    replay(&run1, &m, &txs);
    replay(&run2, &m, &txs);

    // Same schedule, two runs: byte-identical shards and top roots.
    for shard in 0..4 {
        assert_eq!(
            shard_fingerprint(run1.shard(shard)),
            shard_fingerprint(run2.shard(shard)),
            "shard {shard} fingerprint diverged across identical runs"
        );
    }
    assert_eq!(run1.top_root(), run2.top_root());

    // Run 3 appends in a different *inter-shard* interleaving: all
    // shard-3 traffic first, then 2, 1, 0 — but each shard still sees
    // its own txs in the original relative order. Nothing observable
    // may change.
    let mut regrouped: Vec<TxRequest> = Vec::with_capacity(txs.len());
    for shard in (0..4usize).rev() {
        regrouped.extend(
            txs.iter()
                .filter(|tx| route_clue_str(&tx.clues[0], 4) == shard)
                .cloned(),
        );
    }
    assert_eq!(regrouped.len(), txs.len(), "regrouping must lose nothing");
    let run3 = sharded(4, 8);
    replay(&run3, &m, &regrouped);
    for shard in 0..4 {
        assert_eq!(
            shard_fingerprint(run1.shard(shard)),
            shard_fingerprint(run3.shard(shard)),
            "shard {shard} fingerprint depends on inter-shard interleaving"
        );
    }
    assert_eq!(
        run1.top_root(),
        run3.top_root(),
        "composed top root depends on inter-shard interleaving"
    );
}
