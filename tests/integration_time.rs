//! Integration tests for the *when* dimension: ledger ↔ T-Ledger ↔ TSA
//! interplay, attack-window bounds, and time-journal auditing.

use ledgerdb::core::{audit_ledger, AuditConfig, LedgerConfig, LedgerDb, MemberRegistry, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::timesvc::attack::{one_way_amplification, protocol4_window_sweep, two_way_attack};
use ledgerdb::timesvc::clock::{Clock, SimClock, Timestamp};
use ledgerdb::timesvc::tledger::{TLedger, TLedgerConfig};
use ledgerdb::timesvc::tsa::TsaPool;
use std::sync::Arc;

fn setup() -> (SimClock, LedgerDb, Arc<TLedger>, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"time-ca");
    let alice = KeyPair::from_seed(b"time-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    let clock = SimClock::new();
    let arc_clock: Arc<dyn Clock> = Arc::new(clock.clone());
    let ledger = LedgerDb::with_parts(
        LedgerConfig { block_size: 4, fam_delta: 6, name: "time-it".into(), state_backend: Default::default() },
        registry,
        Arc::new(ledgerdb::storage::stream::MemoryStreamStore::new()),
        Arc::clone(&arc_clock),
    );
    let pool = Arc::new(TsaPool::new(2, Arc::clone(&arc_clock)));
    let tledger = Arc::new(TLedger::new(TLedgerConfig::default(), arc_clock, pool));
    (clock, ledger, tledger, alice)
}

#[test]
fn ledger_and_tledger_share_simulated_time() {
    let (clock, mut ledger, tledger, alice) = setup();
    clock.advance(5_000_000);
    let req = TxRequest::signed(&alice, b"t".to_vec(), vec![], 0);
    ledger.append(req).unwrap();
    let ack = ledger.anchor_time(&tledger).unwrap();
    // The time journal's own timestamp comes from the shared clock.
    let journal_ts = {
        let tj = ledger.get_tx(ack.jsn).unwrap();
        tj.timestamp
    };
    assert_eq!(journal_ts, Timestamp(5_000_000));
}

#[test]
fn time_journal_gives_tsa_backed_bound() {
    let (clock, mut ledger, tledger, alice) = setup();
    for i in 0..4u64 {
        clock.advance(250_000);
        let req = TxRequest::signed(&alice, vec![i as u8], vec![], i);
        ledger.append(req).unwrap();
        ledger.anchor_time(&tledger).unwrap();
    }
    clock.advance(1_000_000);
    tledger.finalize_now().unwrap();
    // Every notary entry is now covered by a TSA attestation.
    for seq in 0..tledger.entry_count() {
        let tj = tledger.covering_time_journal(seq).expect("covered");
        assert!(tj.attestation.verify().is_ok());
        assert!(tj.attestation.timestamp >= Timestamp(1_000_000));
    }
}

#[test]
fn audit_rejects_ledger_with_tampered_time_receipt() {
    let (_, mut ledger, tledger, alice) = setup();
    let req = TxRequest::signed(&alice, b"x".to_vec(), vec![], 0);
    ledger.append(req).unwrap();
    ledger.anchor_time(&tledger).unwrap();
    ledger.seal_block();
    // Auditor expecting a different T-Ledger key must fail.
    let rogue = KeyPair::from_seed(b"rogue");
    let config = AuditConfig { tledger_key: Some(*rogue.public()), ..Default::default() };
    assert!(audit_ledger(&ledger, &config).is_err());
    // With the genuine key, the audit passes.
    let config = AuditConfig { tledger_key: Some(*tledger.public_key()), ..Default::default() };
    audit_ledger(&ledger, &config).unwrap();
}

#[test]
fn anchoring_fails_when_clock_skewed_past_tolerance() {
    let (clock, mut ledger, _, alice) = setup();
    // Build a T-Ledger whose clock is far ahead of the ledger's.
    let fast_clock = SimClock::new();
    fast_clock.advance(10_000_000);
    let arc_fast: Arc<dyn Clock> = Arc::new(fast_clock);
    let pool = Arc::new(TsaPool::new(1, Arc::clone(&arc_fast)));
    let skewed = TLedger::new(TLedgerConfig::default(), arc_fast, pool);
    let req = TxRequest::signed(&alice, b"x".to_vec(), vec![], 0);
    ledger.append(req).unwrap();
    let _ = clock; // ledger clock still at ~0 → submission looks stale.
    assert!(ledger.anchor_time(&skewed).is_err());
}

#[test]
fn attack_windows_match_paper_bounds() {
    // Fig 5(a): one-way window is exactly the adversary's chosen delay.
    for delay in [1u64, 1_000_000, 86_400_000_000] {
        assert_eq!(one_way_amplification(delay).window_us, Some(delay));
    }
    // Fig 5(b): Protocol 4 rejects anything at/over τ_Δ.
    let config = TLedgerConfig { submission_tolerance_us: 300_000, tsa_interval_us: 1_000_000 };
    assert!(two_way_attack(config, 299_999).is_ok());
    assert!(two_way_attack(config, 300_000).is_err());
    let (worst, rejected) = protocol4_window_sweep(config, 25_000, 1_000_000);
    assert!(worst < 300_000);
    assert_eq!(rejected, Some(300_000));
}

#[test]
fn tsa_pool_rotation_preserves_verifiability() {
    let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
    let pool = Arc::new(TsaPool::new(5, Arc::clone(&clock)));
    let tledger = TLedger::new(TLedgerConfig::default(), clock, Arc::clone(&pool));
    let lid = ledgerdb::crypto::sha256(b"lid");
    for i in 0..10u64 {
        tledger.submit(lid, ledgerdb::crypto::sha256(&i.to_be_bytes()), Timestamp(0)).unwrap();
        tledger.finalize_now().unwrap();
    }
    // Attestations rotate across the pool yet all verify as trusted.
    for seq in 0..10 {
        let tj = tledger.covering_time_journal(seq).unwrap();
        assert!(pool.attestation_trusted(&tj.attestation));
    }
}
