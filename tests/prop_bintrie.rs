//! Property suite for the binary state-commitment trie: a randomized
//! insert/overwrite/delete workload checked against a model map, with
//! every proof verified and every tampering attempt rejected.

use ledgerdb::bintrie::{verify_bin_proof, BinTrie};
use ledgerdb::crypto::wire::Wire;
use std::collections::BTreeMap;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn key(rng: &mut XorShift, universe: u64) -> Vec<u8> {
    format!("key-{:04}", rng.next() % universe).into_bytes()
}

fn value(rng: &mut XorShift) -> Vec<u8> {
    (0..(rng.next() % 48)).map(|_| (rng.next() & 0xFF) as u8).collect()
}

/// Drive `ops` random operations from `seed` over a keyspace of
/// `universe` distinct keys, checking the trie against a model
/// `BTreeMap` after every step.
fn run_model_workload(seed: u64, ops: usize, universe: u64) -> (BinTrie, BTreeMap<Vec<u8>, Vec<u8>>) {
    let mut rng = XorShift(seed.max(1));
    let mut trie = BinTrie::new();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for step in 0..ops {
        let k = key(&mut rng, universe);
        match rng.next() % 4 {
            // 3-in-4 inserts (incl. overwrites) so the trie grows.
            0..=2 => {
                let v = value(&mut rng);
                let expect = model.insert(k.clone(), v.clone());
                let got = trie.insert(&k, v);
                assert_eq!(got, expect, "step {step}: insert return mirrors the model");
            }
            _ => {
                let expect = model.remove(&k);
                let got = trie.remove(&k);
                assert_eq!(got, expect, "step {step}: remove return mirrors the model");
            }
        }
        assert_eq!(trie.len(), model.len(), "step {step}: len mirrors the model");
        assert_eq!(trie.get(&k), model.get(&k).map(|v| v.as_slice()), "step {step}: get");
    }
    (trie, model)
}

#[test]
fn random_ops_match_model_map() {
    for seed in [1u64, 7, 42, 0xDEAD] {
        let (trie, model) = run_model_workload(seed, 400, 60);
        // Full sweep at the end: every key in the universe agrees.
        for i in 0..60u64 {
            let k = format!("key-{i:04}").into_bytes();
            assert_eq!(trie.get(&k), model.get(&k).map(|v| v.as_slice()));
        }
        // Canonical enumeration agrees with the model exactly.
        let entries: BTreeMap<Vec<u8>, Vec<u8>> = trie.entries().into_iter().collect();
        assert_eq!(entries, model);
    }
}

#[test]
fn roots_are_history_independent() {
    // The committed root depends only on the *content*, not on the
    // order of operations that produced it. Build the same final map
    // two different ways (and once with detours through deleted keys).
    let (a, model) = run_model_workload(99, 300, 40);
    let mut b = BinTrie::new();
    for (k, v) in model.iter().rev() {
        b.insert(k, v.clone());
    }
    let mut c = BinTrie::new();
    c.insert(b"transient", b"gone".to_vec());
    for (k, v) in &model {
        c.insert(k, v.clone());
    }
    c.remove(b"transient");
    assert_eq!(a.root_hash(), b.root_hash());
    assert_eq!(a.root_hash(), c.root_hash());
}

#[test]
fn inclusion_and_absence_proofs_always_verify() {
    let (trie, model) = run_model_workload(3, 500, 80);
    let root = trie.root_hash();
    for i in 0..80u64 {
        let k = format!("key-{i:04}").into_bytes();
        let proof = trie.prove(&k);
        // Wire round-trip first: verification must hold on the bytes a
        // client would actually receive.
        let decoded =
            ledgerdb::bintrie::BinProof::from_wire(&proof.to_wire()).expect("wire round-trip");
        assert_eq!(decoded, proof);
        let proven = verify_bin_proof(&root, &decoded).expect("fresh proof verifies");
        assert_eq!(
            proven,
            model.get(&k).map(|v| v.as_slice()),
            "key {:?}: proven value mirrors the model",
            String::from_utf8_lossy(&k)
        );
    }
    // A key far outside the universe is verifiably absent too.
    let stranger = b"never-inserted-anywhere".to_vec();
    let proof = trie.prove(&stranger);
    assert_eq!(verify_bin_proof(&root, &proof).unwrap(), None);
}

#[test]
fn empty_trie_proves_absence() {
    let trie = BinTrie::new();
    let proof = trie.prove(b"anything");
    assert_eq!(verify_bin_proof(&trie.root_hash(), &proof).unwrap(), None);
}

#[test]
fn tampered_proofs_always_fail() {
    let (trie, model) = run_model_workload(11, 400, 50);
    let root = trie.root_hash();
    let present = model.keys().next().expect("workload leaves keys behind").clone();
    let proof = trie.prove(&present);
    assert!(proof.is_inclusion());

    // 1. Value substitution.
    let mut t = proof.clone();
    if let Some((_, v)) = &mut t.leaf {
        v.push(0xFF);
    }
    assert!(verify_bin_proof(&root, &t).is_err(), "value tamper");

    // 2. Leaf-key substitution (claim a different key holds the value).
    let mut t = proof.clone();
    if let Some((k, _)) = &mut t.leaf {
        k.push(b'x');
    }
    assert!(verify_bin_proof(&root, &t).is_err(), "leaf-key tamper");

    // 3. Sibling bit-flips: every byte of every sibling link matters.
    for i in 0..proof.siblings.len() {
        let mut t = proof.clone();
        t.siblings[i][0] ^= 0x01;
        assert!(verify_bin_proof(&root, &t).is_err(), "sibling {i} tamper");
    }

    // 4. Bitmap tampering: moving a branch position breaks the chain
    //    (or the popcount/sibling-count invariant).
    let mut t = proof.clone();
    t.bitmap[31] ^= 0x01;
    assert!(verify_bin_proof(&root, &t).is_err(), "bitmap tamper");

    // 5. Dropping a sibling breaks the popcount invariant.
    let mut t = proof.clone();
    t.siblings.pop();
    assert!(verify_bin_proof(&root, &t).is_err(), "truncated siblings");

    // 6. An inclusion proof replayed against a *different* queried key
    //    cannot demonstrate absence of that key.
    let absent_key = b"key-9999".to_vec();
    assert!(model.get(&absent_key).is_none());
    let mut t = proof.clone();
    t.key = absent_key;
    assert!(verify_bin_proof(&root, &t).is_err(), "path transplant");

    // 7. A stale proof fails against a root that moved on.
    let mut evolved = trie;
    evolved.insert(b"one-more-key", b"v".to_vec());
    assert!(verify_bin_proof(&evolved.root_hash(), &proof).is_err(), "stale root");
}
