//! Differential determinism suite for the CPU-parallel append/proof
//! pipeline: the pooled and serial paths must be **byte-identical** —
//! same block hashes, same roots, same receipts, same wire-encoded
//! proofs — across randomized batch schedules that interleave appends,
//! seals, occults, and a purge. Plus ledger-level pool torture: a
//! panicking pool task must neither wedge the pool nor poison the
//! ledger, and surfaces as a typed per-item error.

use ledgerdb::core::{
    LedgerConfig, LedgerDb, LedgerError, MemberRegistry, OccultMode, SharedLedger, TxRequest,
};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;
use ledgerdb::crypto::wire::Wire;
use ledgerdb::pool::Pool;
use ledgerdb::telemetry::Registry;
use std::sync::Arc;

struct World {
    shared: SharedLedger,
    alice: KeyPair,
    bob: KeyPair,
    dba: KeyPair,
    regulator: KeyPair,
}

fn world(block_size: u64) -> World {
    let ca = CertificateAuthority::from_seed(b"diff-ca");
    let alice = KeyPair::from_seed(b"diff-alice");
    let bob = KeyPair::from_seed(b"diff-bob");
    let dba = KeyPair::from_seed(b"diff-dba");
    let regulator = KeyPair::from_seed(b"diff-reg");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    registry.register(ca.issue("bob", Role::User, bob.public())).unwrap();
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
    registry.register(ca.issue("reg", Role::Regulator, regulator.public())).unwrap();
    let config = LedgerConfig { block_size, fam_delta: 6, name: "diff".into(), state_backend: Default::default() };
    World { shared: SharedLedger::new(LedgerDb::new(config, registry)), alice, bob, dba, regulator }
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// One deterministic randomized schedule: batches of varying size with
/// varying payloads/clues/signers, a seal after most batches, occults
/// of already-committed journals, and one purge partway through.
enum Op {
    Batch(Vec<TxRequest>),
    Seal,
    /// Occult the journal at this fraction (per-mille) of the committed
    /// prefix.
    Occult(u64),
    /// Purge up to this fraction (per-mille) of the committed prefix.
    Purge(u64),
}

fn schedule(w: &World, seed: u64) -> Vec<Op> {
    let mut rng = XorShift(seed.max(1));
    let mut ops = Vec::new();
    let mut serial = 0u64;
    for round in 0..12u64 {
        let batch_len = 1 + rng.next() % 24;
        let batch: Vec<TxRequest> = (0..batch_len)
            .map(|_| {
                let signer = if rng.next() % 3 == 0 { &w.bob } else { &w.alice };
                let payload_len = (rng.next() % 300) as usize;
                let payload: Vec<u8> =
                    (0..payload_len).map(|_| (rng.next() & 0xFF) as u8).collect();
                let clues = match rng.next() % 4 {
                    0 => vec![],
                    1 => vec![format!("c{}", rng.next() % 5)],
                    _ => vec![format!("c{}", rng.next() % 5), format!("d{}", rng.next() % 3)],
                };
                serial += 1;
                TxRequest::signed(signer, payload, clues, seed << 20 | serial)
            })
            .collect();
        ops.push(Op::Batch(batch));
        if rng.next() % 4 != 0 {
            ops.push(Op::Seal);
        }
        if round >= 2 && rng.next() % 3 == 0 {
            ops.push(Op::Occult(rng.next() % 1000));
        }
        if round == 7 {
            ops.push(Op::Purge(200 + rng.next() % 300));
        }
    }
    ops.push(Op::Seal);
    ops
}

/// Replay `ops` against `w`, batched-appending through the pool when
/// one is given and through the serial batched path otherwise.
fn replay(w: &World, ops: &[Op], pool: Option<&Arc<Pool>>) {
    w.shared.set_pool(pool.cloned());
    let mut occulted = std::collections::HashSet::new();
    let mut purged_to = 0u64;
    for op in ops {
        match op {
            Op::Batch(requests) => {
                let results = match pool {
                    Some(pool) => {
                        w.shared.append_batch_pipelined(requests.clone(), pool).unwrap()
                    }
                    None => w.shared.append_batch(requests.clone()).unwrap(),
                };
                for r in results {
                    r.unwrap();
                }
            }
            Op::Seal => w.shared.try_seal_block().unwrap(),
            Op::Occult(mille) => {
                let count = w.shared.journal_count();
                let target = count * mille / 1000;
                // Deterministic skip of already-mutated targets keeps
                // the twins in lockstep without tracking ledger errors.
                if target < purged_to || !occulted.insert(target) {
                    continue;
                }
                w.shared.with_write(|l| {
                    if l.is_occulted(target) {
                        return; // occult journals can land on marked jsns
                    }
                    let digest = l.occult_approval_digest(target);
                    let mut ms = MultiSignature::new();
                    ms.add(&w.dba, &digest);
                    ms.add(&w.regulator, &digest);
                    l.occult(target, ms, OccultMode::Sync).unwrap();
                });
            }
            Op::Purge(mille) => {
                let count = w.shared.journal_count();
                let purge_to = (count * mille / 1000).max(purged_to + 1);
                w.shared.with_write(|l| {
                    let digest = l.purge_approval_digest(purge_to);
                    let mut ms = MultiSignature::new();
                    ms.add(&w.dba, &digest);
                    ms.add(&w.alice, &digest);
                    ms.add(&w.bob, &digest);
                    // Pin one survivor that the purge would erase.
                    l.purge(purge_to, ms, &[purge_to / 2], false).unwrap();
                });
                purged_to = purge_to;
            }
        }
    }
}

/// Every externally observable byte of the ledger: roots, the full
/// block chain (wire-encoded), receipts, and existence proofs for a
/// deterministic jsn sample.
fn fingerprint(w: &World) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&w.shared.journal_root().0);
    out.extend_from_slice(&w.shared.clue_root().0);
    out.extend_from_slice(&w.shared.anchor().to_wire());
    let blocks = w.shared.blocks_from(0, u64::MAX);
    for block in &blocks {
        out.extend_from_slice(&block.hash().0);
        out.extend_from_slice(&block.to_wire());
    }
    let sealed = blocks.last().map(|b| b.first_jsn + b.journal_count).unwrap_or(0);
    let anchor = w.shared.anchor();
    for jsn in (0..sealed).step_by(7) {
        if let Ok(Some(receipt)) = w.shared.receipt(jsn) {
            out.extend_from_slice(&receipt.to_wire());
        }
        match w.shared.prove_existence(jsn, &anchor) {
            Ok((tx_hash, proof)) => {
                out.extend_from_slice(&tx_hash.0);
                out.extend_from_slice(&proof.to_wire());
            }
            Err(_) => out.push(0xEE), // purged/occulted: same on both twins
        }
    }
    out
}

#[test]
fn pooled_and_serial_schedules_are_byte_identical() {
    for seed in [3u64, 17, 101] {
        for block_size in [4u64, 16] {
            let serial = world(block_size);
            let pooled = world(block_size);
            let ops = schedule(&serial, seed);
            let pool = Pool::with_registry(3, &Registry::new());
            replay(&serial, &ops, None);
            replay(&pooled, &ops, Some(&pool));
            assert_eq!(
                serial.shared.journal_count(),
                pooled.shared.journal_count(),
                "journal counts diverged (seed {seed}, block_size {block_size})"
            );
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&pooled),
                "pooled replay diverged from serial (seed {seed}, block_size {block_size})"
            );
        }
    }
}

#[test]
fn single_worker_pool_matches_many_worker_pool() {
    // Worker count must never leak into results: 1-worker and 4-worker
    // pools replay the same schedule to the same bytes.
    let a = world(8);
    let b = world(8);
    let ops = schedule(&a, 77);
    let pool_one = Pool::with_registry(1, &Registry::new());
    let pool_many = Pool::with_registry(4, &Registry::new());
    replay(&a, &ops, Some(&pool_one));
    replay(&b, &ops, Some(&pool_many));
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn injected_task_failure_is_typed_and_does_not_poison_the_batch() {
    // A pool-task panic reaches the prepared entry point as a per-item
    // `LedgerError::TaskFailed`; siblings commit with dense jsns.
    let w = world(16);
    let good = |i: u64| {
        Ok(ledgerdb::core::PreparedTx::compute(TxRequest::signed(
            &w.alice,
            format!("ok-{i}").into_bytes(),
            vec![],
            i,
        )))
    };
    let prepared = vec![
        good(0),
        Err(LedgerError::TaskFailed("worker panicked: boom".into())),
        good(2),
    ];
    let results = w.shared.with_write(|l| l.append_batch_prepared(prepared)).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_ref().unwrap().jsn, 0);
    assert!(matches!(results[1], Err(LedgerError::TaskFailed(_))));
    assert_eq!(results[2].as_ref().unwrap().jsn, 1, "failed item must not consume a jsn");
    assert_eq!(w.shared.journal_count(), 2);
    // The ledger keeps working afterwards.
    w.shared
        .append(TxRequest::signed(&w.alice, b"after".to_vec(), vec![], 99))
        .unwrap();
    assert_eq!(w.shared.journal_count(), 3);
}

#[test]
fn panicking_pool_tasks_do_not_wedge_the_pool_or_the_ledger() {
    // Torture: hammer the SAME pool the ledger uses with panicking
    // tasks between pipelined batches. Every batch must still commit,
    // and the final ledger must match a serial twin byte-for-byte.
    let pooled = world(8);
    let serial = world(8);
    let pool = Pool::with_registry(2, &Registry::new());
    let mut all: Vec<Vec<TxRequest>> = Vec::new();
    for round in 0..8u64 {
        let batch: Vec<TxRequest> = (0..6u64)
            .map(|i| {
                TxRequest::signed(
                    &pooled.alice,
                    format!("t-{round}-{i}").into_bytes(),
                    vec![format!("t{}", i % 2)],
                    round * 100 + i,
                )
            })
            .collect();
        all.push(batch.clone());

        // Panic storm on the shared pool.
        let stormed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..4 {
                    s.spawn(move || {
                        if i % 2 == 0 {
                            panic!("torture round {round} task {i}");
                        }
                    });
                }
            });
        }));
        assert!(stormed.is_err(), "scope must re-raise the task panic");

        // The pool still pipelines the batch correctly.
        let results = pooled.shared.append_batch_pipelined(batch, &pool).unwrap();
        for r in results {
            r.unwrap();
        }
        pooled.shared.try_seal_block().unwrap();
    }
    for batch in all {
        let results = serial.shared.append_batch(batch).unwrap();
        for r in results {
            r.unwrap();
        }
        serial.shared.try_seal_block().unwrap();
    }
    assert_eq!(fingerprint(&pooled), fingerprint(&serial));
}
