//! Recovery torture tests: drive a durable ledger through deterministic
//! injected faults ([`FaultStore`]) and assert the durability contract —
//! every fault is either *recovered* (the rebuilt ledger reproduces the
//! pre-crash commitments) or *reported* as a typed error. Never a panic,
//! never silent data loss.
//!
//! Four distinct fault kinds are exercised directly, plus a seeded sweep
//! that mixes all of them into randomized workloads.

use ledgerdb::core::recovery::{open_durable, recover, PAYLOAD_FILE, WAL_FILE};
use ledgerdb::core::{LedgerConfig, LedgerDb, LedgerError, MemberRegistry, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;
use ledgerdb::crypto::Digest;
use ledgerdb::storage::{Fault, FaultStore, FileStreamStore, FsyncPolicy, StreamStore};
use ledgerdb::timesvc::clock::SimClock;
use std::path::PathBuf;
use std::sync::Arc;

struct Members {
    dba: KeyPair,
    alice: KeyPair,
}

fn members() -> (MemberRegistry, Members) {
    let ca = CertificateAuthority::from_seed(b"torture-ca");
    let dba = KeyPair::from_seed(b"torture-dba");
    let regulator = KeyPair::from_seed(b"torture-reg");
    let alice = KeyPair::from_seed(b"torture-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
    registry.register(ca.issue("regulator", Role::Regulator, regulator.public())).unwrap();
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, Members { dba, alice })
}

fn config(block_size: u64) -> LedgerConfig {
    LedgerConfig { block_size, fam_delta: 4, name: "torture".into(), state_backend: Default::default() }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ledgerdb-torture-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn tx(keys: &KeyPair, i: u64) -> TxRequest {
    TxRequest::signed(keys, i.to_be_bytes().to_vec(), vec![format!("c{}", i % 3)], i)
}

fn roots(ledger: &LedgerDb) -> (Digest, Digest, Digest) {
    (ledger.journal_root(), ledger.clue_root(), ledger.state_root())
}

/// Populate a fresh durable ledger with `n` journals and drop it.
fn populate(dir: &PathBuf, registry: &MemberRegistry, m: &Members, block_size: u64, n: u64) {
    let (mut ledger, report) = open_durable(
        config(block_size),
        registry.clone(),
        dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert!(report.is_clean());
    for i in 0..n {
        ledger.append(tx(&m.alice, i)).unwrap();
    }
    assert!(ledger.durability_error().is_none());
}

/// Reopen the on-disk streams, wrapping the payload stream in a fault
/// plan, and rebuild the kernel by replay.
fn reopen_with_payload_faults(
    dir: &PathBuf,
    registry: &MemberRegistry,
    block_size: u64,
    faults: Vec<Fault>,
) -> LedgerDb {
    let payload = FaultStore::new(
        FileStreamStore::open_with(&dir.join(PAYLOAD_FILE), FsyncPolicy::Always).unwrap(),
        faults,
    );
    let wal = FileStreamStore::open_with(&dir.join(WAL_FILE), FsyncPolicy::Always).unwrap();
    let (ledger, report) = recover(
        config(block_size),
        registry.clone(),
        Arc::new(payload),
        Arc::new(wal),
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert!(report.is_clean(), "populated ledger must reopen clean: {report:?}");
    ledger
}

/// Fault 1 — AppendIoError: the failed append surfaces a typed storage
/// error, the kernel state does not diverge, and later appends succeed.
#[test]
fn append_io_error_is_typed_and_state_converges() {
    let dir = temp_dir("ioerr");
    let (registry, m) = members();
    populate(&dir, &registry, &m, 4, 4);

    let mut ledger =
        reopen_with_payload_faults(&dir, &registry, 4, vec![Fault::AppendIoError { nth: 2 }]);
    ledger.append(tx(&m.alice, 4)).unwrap();
    match ledger.append(tx(&m.alice, 5)) {
        Err(LedgerError::Storage(_)) => {}
        other => panic!("injected I/O error must surface as Storage, got {other:?}"),
    }
    assert_eq!(ledger.journal_count(), 5, "failed append must not mutate the kernel");
    ledger.append(tx(&m.alice, 6)).unwrap();
    assert_eq!(ledger.journal_count(), 6);
    let live = roots(&ledger);
    drop(ledger);

    let (recovered, report) = open_durable(
        config(4),
        registry,
        &dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert!(report.is_clean(), "nothing reached the disk for the failed append: {report:?}");
    assert_eq!(recovered.journal_count(), 6);
    assert_eq!(roots(&recovered), live);
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault 2 — PartialAppend: a crash mid-append leaves a torn payload
/// tail; reopening trims it and replays everything acknowledged before
/// the crash.
#[test]
fn partial_append_crash_recovers_acknowledged_prefix() {
    let dir = temp_dir("partial");
    let (registry, m) = members();
    populate(&dir, &registry, &m, 4, 6);

    let mut ledger = reopen_with_payload_faults(
        &dir,
        &registry,
        4,
        vec![Fault::PartialAppend { nth: 1, keep: 19 }],
    );
    let pre_fault = roots(&ledger);
    assert!(ledger.append(tx(&m.alice, 6)).is_err(), "append died mid-write");
    drop(ledger); // The crash.

    let (recovered, report) = open_durable(
        config(4),
        registry,
        &dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert_eq!(report.payload_truncated_bytes, 19, "torn tail trimmed on reopen");
    assert_eq!(report.journals_replayed, 6);
    assert_eq!(recovered.journal_count(), 6);
    assert_eq!(roots(&recovered), pre_fault);
    assert_eq!(recovered.get_payload(5).unwrap(), 5u64.to_be_bytes());
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault 3 — BitFlip: bit rot inside a committed payload record is
/// detected by the CRC framing on reopen and reported as a typed
/// corruption error, never returned as data.
#[test]
fn bit_flip_in_committed_record_is_reported() {
    let dir = temp_dir("bitflip");
    let (registry, m) = members();
    populate(&dir, &registry, &m, 4, 4);

    let mut ledger = reopen_with_payload_faults(
        &dir,
        &registry,
        4,
        vec![Fault::BitFlip { record: 4, byte: 40, mask: 0x08 }],
    );
    ledger.append(tx(&m.alice, 4)).unwrap(); // Lands, then rots on disk.
    drop(ledger);

    match open_durable(config(4), registry, &dir, FsyncPolicy::Always, Arc::new(SimClock::new())) {
        Err(LedgerError::Storage(e)) => {
            assert!(e.to_string().contains("crc"), "corruption named in: {e}")
        }
        Err(e) => panic!("expected Storage corruption, got {e}"),
        Ok(_) => panic!("bit rot must not reopen silently"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault 4 — EraseNoSync: an erase the hardware lied about is noticed on
/// recovery and redone, so a purge's promise holds across the crash.
#[test]
fn lost_erase_is_redone_on_recovery() {
    let dir = temp_dir("noerase");
    let (registry, m) = members();
    populate(&dir, &registry, &m, 4, 8);

    let mut ledger =
        reopen_with_payload_faults(&dir, &registry, 4, vec![Fault::EraseNoSync { nth: 1 }]);
    let digest = ledger.purge_approval_digest(4);
    let mut ms = MultiSignature::new();
    ms.add(&m.dba, &digest);
    ms.add(&m.alice, &digest);
    ledger.purge(4, ms, &[], false).unwrap(); // Erase of slot 0 is lost.
    drop(ledger);

    // The lie is visible on the raw stream: slot 0 still live.
    let raw = FileStreamStore::open_with(&dir.join(PAYLOAD_FILE), FsyncPolicy::Never).unwrap();
    assert!(!raw.is_erased(0).unwrap(), "precondition: erase never reached the disk");
    drop(raw);

    let (recovered, report) = open_durable(
        config(4),
        registry,
        &dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert_eq!(report.erases_redone, 1, "exactly the lost erase is redone");
    assert!(matches!(recovered.get_payload(0), Err(LedgerError::Purged(0))));
    let raw = FileStreamStore::open_with(&dir.join(PAYLOAD_FILE), FsyncPolicy::Never).unwrap();
    assert!(raw.is_erased(0).unwrap(), "redone erase is durable");
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault 5 — a WAL append failure rolls the payload append back, so the
/// payload stream and journal numbering never drift apart.
#[test]
fn wal_append_failure_rolls_back_payload() {
    let dir = temp_dir("wal-ioerr");
    let (registry, m) = members();
    populate(&dir, &registry, &m, 64, 2); // Large block: nothing sealed yet.

    let payload: Arc<dyn StreamStore> = Arc::new(
        FileStreamStore::open_with(&dir.join(PAYLOAD_FILE), FsyncPolicy::Always).unwrap(),
    );
    let wal = Arc::new(FaultStore::new(
        FileStreamStore::open_with(&dir.join(WAL_FILE), FsyncPolicy::Always).unwrap(),
        vec![Fault::AppendIoError { nth: 2 }],
    ));
    let (mut ledger, _) = recover(
        config(64),
        registry.clone(),
        Arc::clone(&payload),
        wal,
        Arc::new(SimClock::new()),
    )
    .unwrap();

    ledger.append(tx(&m.alice, 2)).unwrap();
    assert!(ledger.append(tx(&m.alice, 3)).is_err(), "WAL write failed");
    assert_eq!(ledger.journal_count(), 3);
    assert_eq!(payload.len(), 3, "orphan payload rolled back with the failed WAL write");
    ledger.append(tx(&m.alice, 4)).unwrap();
    let live = roots(&ledger);
    drop(ledger);

    let (recovered, report) = open_durable(
        config(64),
        registry,
        &dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert!(report.is_clean(), "rollback left matching streams: {report:?}");
    assert_eq!(recovered.journal_count(), 4);
    assert_eq!(roots(&recovered), live);
    std::fs::remove_dir_all(&dir).ok();
}

/// Seeded sweep: every seed derives a four-fault plan (one of each kind)
/// scattered over a randomized workload of appends and a purge. Whatever
/// fires, the run must end in one of exactly two states — a recovered
/// ledger reproducing the live kernel's commitments, or a typed
/// corruption/recovery error. Panics and silent divergence fail the test.
#[test]
fn seeded_fault_plans_recover_or_report() {
    let (registry, m) = members();
    for seed in 1..=24u64 {
        let dir = temp_dir(&format!("seed{seed}"));
        populate(&dir, &registry, &m, 4, 4);

        let payload = FaultStore::with_seed(
            FileStreamStore::open_with(&dir.join(PAYLOAD_FILE), FsyncPolicy::Always).unwrap(),
            seed,
            16,
        );
        let wal = FileStreamStore::open_with(&dir.join(WAL_FILE), FsyncPolicy::Always).unwrap();
        let (mut ledger, report) = recover(
            config(4),
            registry.clone(),
            Arc::new(payload),
            Arc::new(wal),
            Arc::new(SimClock::new()),
        )
        .unwrap();
        assert!(report.is_clean(), "seed {seed}: populated ledger reopens clean");

        // Workload: appends, then a purge. The first typed error is the
        // "crash" — stop driving and fall through to recovery.
        let mut crashed = false;
        for i in 4..14u64 {
            if ledger.append(tx(&m.alice, i)).is_err() {
                crashed = true;
                break;
            }
        }
        if !crashed {
            let digest = ledger.purge_approval_digest(4);
            let mut ms = MultiSignature::new();
            ms.add(&m.dba, &digest);
            ms.add(&m.alice, &digest);
            crashed = ledger.purge(4, ms, &[], false).is_err();
        }
        let live_count = ledger.journal_count();
        let live_roots = roots(&ledger);
        let live_purged = ledger.pseudo_genesis().map(|g| g.purge_to);
        drop(ledger);

        match open_durable(
            config(4),
            registry.clone(),
            &dir,
            FsyncPolicy::Always,
            Arc::new(SimClock::new()),
        ) {
            Ok((recovered, report)) => {
                assert_eq!(
                    recovered.journal_count(),
                    live_count,
                    "seed {seed}: every acknowledged journal survives ({report:?})"
                );
                assert_eq!(roots(&recovered), live_roots, "seed {seed}: commitments reproduce");
                assert_eq!(
                    recovered.pseudo_genesis().map(|g| g.purge_to),
                    live_purged,
                    "seed {seed}: purge state survives"
                );
                if let Some(purge_to) = live_purged {
                    // Promised erasures hold even if the erase was lost.
                    for jsn in 0..purge_to {
                        assert!(
                            recovered.get_payload(jsn).is_err(),
                            "seed {seed}: purged payload {jsn} must stay unreadable"
                        );
                    }
                }
            }
            Err(LedgerError::Storage(_) | LedgerError::Recovery(_)) => {
                // Reported: corruption named, nothing silently served.
            }
            Err(e) => panic!("seed {seed}: unexpected error class: {e}"),
        }
        assert!(crashed || live_count == 15, "seed {seed}: bookkeeping");
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Checkpoint-era torture: torn WAL tails at the truncation boundary and
// randomized crash schedules (hand-rolled xorshift, no external deps).
// ---------------------------------------------------------------------

use ledgerdb::core::recovery::CHECKPOINT_DIR;
use ledgerdb::storage::{CheckpointStore, CkptIo, CrashPoint};

/// A torn WAL record *exactly at the checkpoint truncation boundary*:
/// the WAL was just reset by a checkpoint, holds a single tail record,
/// and that record is torn. Recovery must keep the whole checkpointed
/// prefix and drop only the torn tail.
#[test]
fn torn_wal_record_at_checkpoint_boundary() {
    let dir = temp_dir("ckpt-torn");
    let (registry, m) = members();
    let boundary_fingerprint = {
        let (mut ledger, _) = open_durable(
            config(2),
            registry.clone(),
            &dir,
            FsyncPolicy::Always,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        let store = Arc::new(CheckpointStore::open(&dir.join(CHECKPOINT_DIR)).unwrap());
        ledger.enable_checkpoints(store, Arc::new(CkptIo::new()), 1);
        for i in 0..4u64 {
            ledger.append(tx(&m.alice, i)).unwrap();
        }
        assert!(ledger.durability_error().is_none());
        let fp = ledger.state_fingerprint();
        // One unsealed journal past the checkpoint: the WAL's only record.
        ledger.append(tx(&m.alice, 4)).unwrap();
        fp
    };
    // Tear the WAL inside that first-and-only tail record.
    let wal_path = dir.join(WAL_FILE);
    let len = std::fs::metadata(&wal_path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);

    let (recovered, report) = open_durable(
        config(2),
        registry,
        &dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert!(report.checkpoint.is_some(), "recovery starts from the checkpoint");
    assert!(report.wal_truncated_bytes > 0, "torn tail trimmed");
    assert_eq!(report.journals_replayed, 0, "the only tail record was torn");
    assert_eq!(report.orphan_payloads_dropped, 1, "the torn journal's payload is an orphan");
    assert_eq!(recovered.journal_count(), 4);
    assert_eq!(
        recovered.state_fingerprint(),
        boundary_fingerprint,
        "state is exactly the checkpoint boundary"
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Randomized crash schedules: each seed derives a workload shape
/// (append count, checkpoint cadence, optional purge) and a crash point
/// within its checkpoint-path operation schedule. Whatever fires, the
/// recovered ledger must be byte-identical to a never-crashed control
/// run of the same prefix — the probabilistic twin of the exhaustive
/// sweep in `crash_points.rs`.
#[test]
fn seeded_random_crash_schedules_recover_byte_identical() {
    let (registry, m) = members();

    // One deterministic workload per seed; `fps` (when given) records
    // the control fingerprint after every completed step.
    fn drive(
        dir: &PathBuf,
        registry: &MemberRegistry,
        m: &Members,
        io: Arc<CkptIo>,
        appends: u64,
        every_n: u64,
        purge_at: Option<u64>,
        mut fps: Option<&mut Vec<Digest>>,
    ) -> usize {
        let (mut ledger, _) = open_durable(
            config(2),
            registry.clone(),
            dir,
            FsyncPolicy::Always,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        let store = Arc::new(CheckpointStore::open(&dir.join(CHECKPOINT_DIR)).unwrap());
        ledger.enable_checkpoints(store, io, every_n);
        if let Some(fps) = fps.as_deref_mut() {
            fps.push(ledger.state_fingerprint());
        }
        let mut done = 0;
        for i in 0..appends {
            if purge_at == Some(i) {
                let digest = ledger.purge_approval_digest(2);
                let mut ms = MultiSignature::new();
                ms.add(&m.dba, &digest);
                ms.add(&m.alice, &digest);
                if ledger.purge(2, ms, &[], false).is_err() {
                    return done;
                }
                done += 1;
                if let Some(fps) = fps.as_deref_mut() {
                    fps.push(ledger.state_fingerprint());
                }
            }
            if ledger.append(tx(&m.alice, i)).is_err() {
                return done;
            }
            done += 1;
            if let Some(fps) = fps.as_deref_mut() {
                fps.push(ledger.state_fingerprint());
            }
        }
        done
    }

    for seed in 1..=10u64 {
        let mut state = seed;
        let appends = 6 + xorshift(&mut state) % 6; // 6..=11
        let every_n = 1 + xorshift(&mut state) % 2; // 1..=2
        let purge_at = if xorshift(&mut state) % 2 == 0 {
            Some(4 + xorshift(&mut state) % 2) // after jsn 4 or 5 exists
        } else {
            None
        };

        // Control: full run, unarmed, fingerprint per step + op schedule.
        let control_dir = temp_dir(&format!("rs-ctl-{seed}"));
        let io = Arc::new(CkptIo::new());
        let mut fps = Vec::new();
        let steps = drive(
            &control_dir,
            &registry,
            &m,
            Arc::clone(&io),
            appends,
            every_n,
            purge_at,
            Some(&mut fps),
        );
        let total = io.op_count();
        std::fs::remove_dir_all(&control_dir).ok();
        assert!(total > 0, "seed {seed}: workload must checkpoint at least once");
        assert_eq!(steps + 1, fps.len());

        // Crash run: random op, random torn variant at write sites.
        let op = 1 + xorshift(&mut state) % total;
        let torn_keep = match xorshift(&mut state) % 3 {
            0 => None,
            1 => Some(0),
            _ => Some(xorshift(&mut state) as usize % 16),
        };
        let dir = temp_dir(&format!("rs-kill-{seed}"));
        let io = Arc::new(CkptIo::new());
        io.arm(CrashPoint { op, torn_keep });
        let done = drive(
            &dir,
            &registry,
            &m,
            Arc::clone(&io),
            appends,
            every_n,
            purge_at,
            None,
        );

        let (recovered, report) = open_durable(
            config(2),
            registry.clone(),
            &dir,
            FsyncPolicy::Always,
            Arc::new(SimClock::new()),
        )
        .unwrap_or_else(|e| panic!("seed {seed} op {op}: kill residue must recover: {e}"));
        assert_eq!(
            recovered.state_fingerprint(),
            fps[done],
            "seed {seed} op {op} torn {torn_keep:?}: recovered state matches the \
             control after {done} steps (report: {report:?})"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
