//! End-to-end Dasein (what-when-who) integration tests across crates:
//! crypto + accumulator + clue + timesvc + core working together the way
//! Fig 1 composes them.

use ledgerdb::clue::cm_tree::CmTree;
use ledgerdb::core::{
    audit_ledger, AuditConfig, LedgerConfig, LedgerDb, MemberRegistry, TxRequest, VerifyLevel,
};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::timesvc::clock::Clock;
use ledgerdb::timesvc::tledger::{TLedger, TLedgerConfig};
use ledgerdb::timesvc::tsa::TsaPool;
use std::sync::Arc;

struct World {
    ledger: LedgerDb,
    tledger: Arc<TLedger>,
    alice: KeyPair,
    bob: KeyPair,
}

fn world(block_size: u64) -> World {
    let ca = CertificateAuthority::from_seed(b"it-ca");
    let alice = KeyPair::from_seed(b"it-alice");
    let bob = KeyPair::from_seed(b"it-bob");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    registry.register(ca.issue("bob", Role::User, bob.public())).unwrap();
    let config = LedgerConfig { block_size, fam_delta: 6, name: "it".into(), state_backend: Default::default() };
    let ledger = LedgerDb::new(config, registry);
    let clock: Arc<dyn Clock> = Arc::clone(ledger.clock());
    let pool = Arc::new(TsaPool::new(2, Arc::clone(&clock)));
    let tledger = Arc::new(TLedger::new(TLedgerConfig::default(), clock, pool));
    World { ledger, tledger, alice, bob }
}

#[test]
fn full_dasein_cycle() {
    let mut w = world(4);
    // Append journals from two members under interleaved clues.
    for i in 0..50u64 {
        let keys = if i % 2 == 0 { &w.alice } else { &w.bob };
        let req = TxRequest::signed(
            keys,
            format!("doc-{i}").into_bytes(),
            vec![format!("clue-{}", i % 5)],
            i,
        );
        w.ledger.append(req).unwrap();
        if i % 10 == 9 {
            w.ledger.anchor_time(&w.tledger).unwrap();
        }
    }
    w.tledger.finalize_now().unwrap();
    w.ledger.seal_block();

    // what: every journal existence-verifies client-side.
    let anchor = w.ledger.anchor();
    for jsn in 0..w.ledger.journal_count() {
        let (tx_hash, proof) = w.ledger.prove_existence(jsn, &anchor).unwrap();
        w.ledger
            .verify_existence(jsn, &tx_hash, &proof, &anchor, VerifyLevel::Client)
            .unwrap();
    }

    // who: receipts verify and are deterministic across calls.
    let r1 = w.ledger.receipt(7).unwrap().unwrap();
    let r2 = w.ledger.receipt(7).unwrap().unwrap();
    assert!(r1.verify());
    assert_eq!(r1.signature, r2.signature, "lazy receipts must be deterministic");

    // lineage: all five clues verify with exact counts.
    let cm_root = w.ledger.clue_root();
    for c in 0..5 {
        let clue = format!("clue-{c}");
        let proof = w.ledger.prove_clue(&clue).unwrap();
        assert_eq!(proof.entries.len(), 10);
        CmTree::verify_client(&cm_root, &proof).unwrap();
    }

    // when + audit: the full Dasein-complete audit passes.
    let report = audit_ledger(
        &w.ledger,
        &AuditConfig { tledger_key: Some(*w.tledger.public_key()), ..Default::default() },
    )
    .unwrap();
    assert_eq!(report.time_journals, 5);
    assert!(report.journals_checked >= 55);
}

#[test]
fn receipt_survives_ledger_growth() {
    let mut w = world(2);
    let req = TxRequest::signed(&w.alice, b"stable".to_vec(), vec![], 0);
    let receipt = w.ledger.append_committed(req).unwrap();
    // Keep appending; the old receipt must remain valid because it is
    // pinned to its block hash, not the moving accumulator root.
    for i in 1..30u64 {
        let req = TxRequest::signed(&w.alice, format!("x{i}").into_bytes(), vec![], i);
        w.ledger.append(req).unwrap();
    }
    w.ledger.seal_block();
    assert!(receipt.verify());
    assert_eq!(w.ledger.receipt(0).unwrap().unwrap().block_hash, receipt.block_hash);
}

#[test]
fn cross_member_forgery_rejected() {
    let mut w = world(4);
    // Bob signs a request but claims Alice's key (threat-C style client
    // forgery): the ledger proxy must reject it.
    let payload = b"forged transfer".to_vec();
    let hash = TxRequest::request_hash(&payload, &[], 0, w.alice.public());
    let forged = TxRequest {
        payload,
        clues: vec![],
        nonce: 0,
        client_pk: *w.alice.public(),
        signature: w.bob.sign(&hash),
    };
    assert!(w.ledger.append(forged).is_err());
}

#[test]
fn stale_clue_proof_fails_after_new_entries() {
    let mut w = world(4);
    for i in 0..6u64 {
        let req = TxRequest::signed(&w.alice, vec![i as u8], vec!["asset".into()], i);
        w.ledger.append(req).unwrap();
    }
    w.ledger.seal_block();
    let old_proof = w.ledger.prove_clue("asset").unwrap();
    let old_root = w.ledger.clue_root();
    CmTree::verify_client(&old_root, &old_proof).unwrap();

    // New lineage entry: the old proof no longer proves the *complete*
    // lineage against the new root.
    let req = TxRequest::signed(&w.alice, b"v7".to_vec(), vec!["asset".into()], 7);
    w.ledger.append(req).unwrap();
    w.ledger.seal_block();
    let new_root = w.ledger.clue_root();
    assert!(CmTree::verify_client(&new_root, &old_proof).is_err());
}

#[test]
fn server_and_client_verification_agree() {
    let mut w = world(8);
    for i in 0..32u64 {
        let req = TxRequest::signed(&w.alice, vec![i as u8; 100], vec!["k".into()], i);
        w.ledger.append(req).unwrap();
    }
    w.ledger.seal_block();
    let anchor = w.ledger.anchor();
    let proof = w.ledger.prove_clue("k").unwrap();
    w.ledger.verify_clue(&proof, VerifyLevel::Server).unwrap();
    w.ledger.verify_clue(&proof, VerifyLevel::Client).unwrap();
    let (tx_hash, fp) = w.ledger.prove_existence(11, &anchor).unwrap();
    w.ledger.verify_existence(11, &tx_hash, &fp, &anchor, VerifyLevel::Server).unwrap();
    w.ledger.verify_existence(11, &tx_hash, &fp, &anchor, VerifyLevel::Client).unwrap();
}
