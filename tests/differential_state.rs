//! Differential suite for the pluggable state commitment.
//!
//! One deterministic workload (appends + occult + purge + seal) runs
//! under every [`StateBackend`]. The default backend must stay
//! byte-identical to the pre-refactor ledger — its state fingerprint,
//! state root, block hashes, and full chain wire encoding are pinned
//! below against constants captured on the unmodified code. Across
//! backends, every observable behavior that does not embed the
//! commitment root itself must agree exactly.

use ledgerdb::core::state::StateBackend;
use ledgerdb::core::{
    LedgerConfig, LedgerDb, MemberRegistry, OccultMode, SharedLedger, TxRequest, VerifyLevel,
};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;
use ledgerdb::crypto::sha256::Sha256;
use ledgerdb::crypto::wire::Wire;

/// Captured from the pre-refactor tree (16-ary MPT hard-wired) on the
/// exact workload below. The default backend must reproduce all of
/// them bit-for-bit: a drift here means the refactor changed observable
/// ledger bytes, not just internals.
const PRE_PR_STATE_FINGERPRINT: &str =
    "317ffc49055d19be4d8b79029b4750774ee09e67c1bb99054d55db9a7862e91a";
const PRE_PR_STATE_ROOT: &str =
    "5f2fedf3809018f42990455e7df39aaa9399cb0ca6584a977fd1b4c8e27bb86d";
const PRE_PR_LAST_BLOCK_HASH: &str =
    "f84ac9247142dc3b78a8274a32e4d69215491a52fd906d457d4d1e9d64ecbd01";
const PRE_PR_CHAIN_WIRE_SHA256: &str =
    "e6fbc72ba6a8060b40f9a2bb917a854f80e1968cb0d51bbd25ae4a0b46191f08";
const PRE_PR_BLOCK_COUNT: usize = 7;

struct Members {
    alice: KeyPair,
    dba: KeyPair,
    regulator: KeyPair,
}

fn members() -> (MemberRegistry, Members) {
    let ca = CertificateAuthority::from_seed(b"state-diff-ca");
    let alice = KeyPair::from_seed(b"state-diff-alice");
    let dba = KeyPair::from_seed(b"state-diff-dba");
    let regulator = KeyPair::from_seed(b"state-diff-reg");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
    registry.register(ca.issue("reg", Role::Regulator, regulator.public())).unwrap();
    (registry, Members { alice, dba, regulator })
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn schedule(m: &Members, seed: u64, n: u64) -> Vec<TxRequest> {
    let mut rng = XorShift(seed.max(1));
    (0..n)
        .map(|i| {
            let payload: Vec<u8> =
                (0..(rng.next() % 96)).map(|_| (rng.next() & 0xFF) as u8).collect();
            let clue = format!("acct-{}", rng.next() % 13);
            TxRequest::signed(&m.alice, payload, vec![clue], seed << 20 | i)
        })
        .collect()
}

fn mutate(shared: &SharedLedger, m: &Members) {
    let count = shared.journal_count();
    let occult_target = count / 2;
    shared.with_write(|l| {
        let digest = l.occult_approval_digest(occult_target);
        let mut ms = MultiSignature::new();
        ms.add(&m.dba, &digest);
        ms.add(&m.regulator, &digest);
        l.occult(occult_target, ms, OccultMode::Sync).unwrap();
    });
    let purge_to = count / 4;
    shared.with_write(|l| {
        let digest = l.purge_approval_digest(purge_to);
        let mut ms = MultiSignature::new();
        ms.add(&m.dba, &digest);
        ms.add(&m.alice, &digest);
        l.purge(purge_to, ms, &[], false).unwrap();
    });
}

/// Everything a distrusting observer can extract from the ledger after
/// the workload, minus the commitment root itself.
pub(crate) struct Observation {
    pub(crate) shared: SharedLedger,
    pub(crate) journal_count: u64,
    pub(crate) block_count: usize,
    pub(crate) state_root: ledgerdb::crypto::digest::Digest,
    pub(crate) state_fingerprint: ledgerdb::crypto::digest::Digest,
    pub(crate) last_block_hash: ledgerdb::crypto::digest::Digest,
    pub(crate) chain_wire_sha256: [u8; 32],
    /// Per-clue verified value (None = verified absence), in clue order.
    pub(crate) clue_values: Vec<Option<Vec<u8>>>,
}

fn clue_universe() -> Vec<String> {
    let mut clues: Vec<String> = (0..13).map(|i| format!("acct-{i}")).collect();
    clues.push("never-written".into());
    clues
}

pub(crate) fn run_workload(backend: StateBackend) -> Observation {
    let (registry, m) = members();
    let config = LedgerConfig {
        block_size: 8,
        fam_delta: 6,
        name: "state-diff".into(),
        state_backend: backend,
    };
    let shared = SharedLedger::new(LedgerDb::new(config, registry));
    for tx in schedule(&m, 7, 48) {
        shared.append(tx).unwrap();
    }
    mutate(&shared, &m);
    shared.seal_block();

    let state_fingerprint = shared.with_read(|l| l.state_fingerprint());
    let state_root = shared.state_root();
    let blocks = shared.blocks_from(0, u64::MAX);
    let last_block_hash = blocks.last().unwrap().hash();
    let mut h = Sha256::new();
    for b in &blocks {
        h.update(&b.to_wire());
    }
    let chain_wire_sha256 = h.finalize();

    let clue_values = clue_universe()
        .iter()
        .map(|clue| {
            let proof = shared.prove_state(clue);
            assert_eq!(proof.backend(), backend, "proof advertises its backend");
            // Round-trip the wire form: the verified value must come
            // from bytes a remote client could have received.
            let wire = proof.to_wire();
            let decoded = ledgerdb::core::state::StateProof::from_wire(&wire).unwrap();
            LedgerDb::verify_state(&state_root, &decoded)
                .expect("fresh proof verifies against the live root")
                .map(|v| v.to_vec())
        })
        .collect();

    Observation {
        journal_count: shared.journal_count(),
        block_count: blocks.len(),
        state_root,
        state_fingerprint,
        last_block_hash,
        chain_wire_sha256,
        clue_values,
        shared,
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn default_backend_is_byte_identical_to_pre_refactor_ledger() {
    assert_eq!(StateBackend::default(), StateBackend::Mpt);
    let obs = run_workload(StateBackend::default());
    assert_eq!(hex(&obs.state_fingerprint.0), PRE_PR_STATE_FINGERPRINT);
    assert_eq!(hex(&obs.state_root.0), PRE_PR_STATE_ROOT);
    assert_eq!(hex(&obs.last_block_hash.0), PRE_PR_LAST_BLOCK_HASH);
    assert_eq!(hex(&obs.chain_wire_sha256), PRE_PR_CHAIN_WIRE_SHA256);
    assert_eq!(obs.block_count, PRE_PR_BLOCK_COUNT);
}

#[test]
fn backends_agree_on_every_observable_behavior() {
    let mpt = run_workload(StateBackend::Mpt);
    let bin = run_workload(StateBackend::Bin);

    assert_eq!(mpt.journal_count, bin.journal_count);
    assert_eq!(mpt.block_count, bin.block_count);
    // The roots themselves differ (different commitment structures)…
    assert_ne!(mpt.state_root, bin.state_root);
    // …but every resolved value is the same under both.
    for (i, clue) in clue_universe().iter().enumerate() {
        assert_eq!(
            mpt.clue_values[i], bin.clue_values[i],
            "clue {clue:?} resolves identically under both backends"
        );
    }
    // The untouched clue is verifiably absent under both.
    assert_eq!(mpt.clue_values.last().unwrap(), &None);
    assert_eq!(bin.clue_values.last().unwrap(), &None);

    // Existence proofs agree on the journal content (tx hashes are
    // backend-independent) and verify under each backend's own anchor.
    // The proof *bytes* legitimately differ: FAM epoch roots absorb
    // block hashes, and block headers embed the state root.
    let anchor_mpt = mpt.shared.with_read(|l| l.anchor());
    let anchor_bin = bin.shared.with_read(|l| l.anchor());
    for jsn in [13u64, 24, 40, 47] {
        let (h_mpt, p_mpt) = mpt.shared.prove_existence(jsn, &anchor_mpt).unwrap();
        let (h_bin, p_bin) = bin.shared.prove_existence(jsn, &anchor_bin).unwrap();
        assert_eq!(h_mpt, h_bin, "jsn {jsn}: tx hash is backend-independent");
        mpt.shared
            .with_read(|l| {
                l.verify_existence(jsn, &h_mpt, &p_mpt, &anchor_mpt, VerifyLevel::Client)
            })
            .unwrap();
        bin.shared
            .with_read(|l| {
                l.verify_existence(jsn, &h_bin, &p_bin, &anchor_bin, VerifyLevel::Client)
            })
            .unwrap();
    }
}

#[test]
fn proofs_do_not_cross_verify_between_backends() {
    let mpt = run_workload(StateBackend::Mpt);
    let bin = run_workload(StateBackend::Bin);
    // A proof built by one backend must fail against the other's root —
    // verification is anchored to the root, not to trust in the server.
    let p_mpt = mpt.shared.prove_state("acct-3");
    let p_bin = bin.shared.prove_state("acct-3");
    assert!(LedgerDb::verify_state(&bin.state_root, &p_mpt).is_err());
    assert!(LedgerDb::verify_state(&mpt.state_root, &p_bin).is_err());
}

#[test]
fn bin_backend_is_deterministic() {
    let a = run_workload(StateBackend::Bin);
    let b = run_workload(StateBackend::Bin);
    assert_eq!(a.state_root, b.state_root);
    assert_eq!(a.state_fingerprint, b.state_fingerprint);
    assert_eq!(hex(&a.chain_wire_sha256), hex(&b.chain_wire_sha256));
}
