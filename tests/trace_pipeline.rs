//! End-to-end tracing pipeline tests: a traced request must leave a
//! complete, correctly-ordered span tree in the flight recorder, the
//! tree must be retrievable and exportable, the per-stage spans must
//! agree with the independent `ledger_seal_*` histograms, and a
//! forced-slow request must pin a trace resolvable by the id the
//! slow-op log line carries.
//!
//! The recorder is process-global (per-thread rings + one pinned
//! buffer), so these tests key every lookup by their own trace ids and
//! never assert global emptiness.

use ledgerdb::core::recovery::open_durable_with;
use ledgerdb::core::{LedgerConfig, MemberRegistry, SharedLedger, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::server::protocol::{Request, Response};
use ledgerdb::server::service::RequestService;
use ledgerdb::server::{BatchConfig, ServerConfig};
use ledgerdb::telemetry::recorder;
use ledgerdb::telemetry::{Registry, Unit};
use ledgerdb::timesvc::clock::SimClock;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ledgerdb-tracetest-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A durable service with group commit and a compute pool — the
/// configuration where every traced stage is live.
fn durable_service(tag: &str) -> (RequestService, KeyPair, Arc<Registry>, PathBuf) {
    let ca = CertificateAuthority::from_seed(format!("trace-{tag}").as_bytes());
    let alice = KeyPair::from_seed(format!("trace-{tag}-alice").as_bytes());
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    let telemetry = Arc::new(Registry::new());
    let dir = temp_dir(tag);
    let (ledger, _) = open_durable_with(
        LedgerConfig { block_size: 4, fam_delta: 15, name: format!("trace-{tag}"), state_backend: Default::default() },
        registry,
        &dir,
        ledgerdb::storage::FsyncPolicy::Never,
        Arc::new(SimClock::new()),
        &telemetry,
    )
    .unwrap();
    let config = ServerConfig {
        batch: Some(BatchConfig::default()),
        registry: telemetry.clone(),
        pool: Some(ledgerdb::pool::Pool::with_registry(2, &telemetry)),
        ..ServerConfig::default()
    };
    let service = RequestService::start(SharedLedger::new(ledger), &config);
    (service, alice, telemetry, dir)
}

fn tx(alice: &KeyPair, nonce: u64) -> TxRequest {
    TxRequest::signed(alice, format!("tp-{nonce}").into_bytes(), vec!["tp".into()], nonce)
}

fn starts(spans: &[recorder::SpanEvent], name: &str) -> Vec<u64> {
    let id = spans
        .iter()
        .map(|s| s.name_id)
        .find(|&n| recorder::name_of(n) == name);
    match id {
        Some(id) => spans.iter().filter(|s| s.name_id == id).map(|s| s.start_ns).collect(),
        None => Vec::new(),
    }
}

#[test]
fn traced_commit_covers_every_stage_in_order() {
    let (service, alice, _telemetry, dir) = durable_service("stages");

    // AppendCommitted through the group committer: queue wait, window
    // commit, seal, and the seal's durability barrier all before the
    // receipt.
    let trace_id = 0xABCD_0123_4567_89EFu64;
    let response = service.handle_traced(Request::AppendCommitted(tx(&alice, 0)), Some(trace_id));
    assert!(matches!(response, Response::Committed(_)), "got {response:?}");

    let spans = recorder::events_for(trace_id);
    for stage in [
        "append_committed",
        "batch_queue_wait",
        "locked_insert",
        "wal_write",
        "fsync_barrier",
        "seal",
        "seal_fam",
        "seal_clue",
        "seal_state",
        "fsync",
    ] {
        assert!(
            !starts(&spans, stage).is_empty(),
            "stage {stage} missing from trace; have: {:?}",
            spans.iter().map(|s| recorder::name_of(s.name_id)).collect::<Vec<_>>(),
        );
    }
    // Commit-order skeleton: queue wait starts before the locked
    // window, the window before the seal, the seal before its (final)
    // fsync barrier.
    let queue = *starts(&spans, "batch_queue_wait").iter().min().unwrap();
    let lock = *starts(&spans, "locked_insert").iter().min().unwrap();
    let seal = *starts(&spans, "seal").iter().min().unwrap();
    let fsync = *starts(&spans, "fsync_barrier").iter().max().unwrap();
    assert!(
        queue <= lock && lock <= seal && seal <= fsync,
        "stage ordering violated: queue={queue} lock={lock} seal={seal} fsync={fsync}"
    );
    // Every non-root span parents into the tree (its parent exists).
    let root = spans.iter().find(|s| s.parent == 0).expect("root span");
    assert_eq!(recorder::name_of(root.name_id), "append_committed");
    for s in &spans {
        assert!(
            s.parent == 0 || spans.iter().any(|p| p.span == s.parent),
            "span {} ({}) has a dangling parent {}",
            s.span,
            recorder::name_of(s.name_id),
            s.parent,
        );
    }

    // The same tree is servable over the request plane, untraced.
    match service.handle(Request::GetTrace(trace_id)) {
        Response::Trace(wire_spans) => {
            assert_eq!(wire_spans.len(), spans.len());
            assert!(wire_spans.iter().any(|s| s.name == "seal_fam"));
        }
        other => panic!("expected Trace, got {other:?}"),
    }

    // And the recorder's full retained set renders as Chrome-trace JSON
    // that names this trace.
    let json = recorder::chrome_trace_json(&recorder::all_events());
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(
        json.contains(&format!("{trace_id:016x}")),
        "Chrome-trace dump does not mention the trace id"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seal_leg_spans_agree_with_seal_metrics() {
    let (service, alice, telemetry, dir) = durable_service("seallegs");

    // Several sealed commits; collect every seal-leg span duration.
    let mut leg_ns = [0u64; 3]; // fam, clue, state
    let legs = ["seal_fam", "seal_clue", "seal_state"];
    let mut sealed = 0u64;
    for nonce in 0..6u64 {
        let trace_id = 0x5EA1_0000_0000_0000 + nonce + 1;
        let response =
            service.handle_traced(Request::AppendCommitted(tx(&alice, nonce)), Some(trace_id));
        assert!(matches!(response, Response::Committed(_)), "got {response:?}");
        sealed += 1;
        let spans = recorder::events_for(trace_id);
        for (slot, leg) in legs.iter().enumerate() {
            let id = spans
                .iter()
                .map(|s| s.name_id)
                .find(|&n| recorder::name_of(n) == *leg)
                .unwrap_or_else(|| panic!("{leg} missing from trace {trace_id:016x}"));
            leg_ns[slot] += spans
                .iter()
                .filter(|s| s.name_id == id)
                .map(|s| s.end_ns.saturating_sub(s.start_ns))
                .sum::<u64>();
        }
    }

    // The `ledger_seal_*_seconds` histograms time the same work from
    // the metrics side. Counts must match the seal count exactly and
    // the summed durations must agree within a loose factor (both
    // clocks are monotonic reads around the same call, but the span
    // brackets sit slightly wider than the histogram's).
    for (slot, metric) in [
        "ledger_seal_fam_seconds",
        "ledger_seal_clue_seconds",
        "ledger_seal_state_seconds",
    ]
    .iter()
    .enumerate()
    {
        let snap = telemetry.histogram(metric, Unit::Seconds).snapshot();
        assert_eq!(snap.count, sealed, "{metric} count != seals");
        let hist_ns = snap.sum.max(1);
        let span_ns = leg_ns[slot].max(1);
        let ratio = span_ns as f64 / hist_ns as f64;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "{metric}: span-side {span_ns}ns vs histogram {hist_ns}ns (ratio {ratio:.2})"
        );
        assert!(
            span_ns >= hist_ns,
            "{metric}: the span brackets the timed region, so it cannot be shorter \
             (span {span_ns}ns < histogram {hist_ns}ns)"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn forced_slow_append_pins_a_trace_resolvable_by_its_logged_id() {
    let (service, alice, _telemetry, dir) = durable_service("slow");

    // Zero threshold: every operation is "slow", so the append's root
    // span pins its trace and the slow-op log line fires for every
    // instrumented span along the way.
    ledgerdb::telemetry::set_slow_op_threshold(Some(std::time::Duration::from_nanos(1)));
    let trace_id = 0xF10A_7000_0000_0001u64;
    let response = service.handle_traced(Request::Append(tx(&alice, 0)), Some(trace_id));
    ledgerdb::telemetry::set_slow_op_threshold(None);
    assert!(matches!(response, Response::Appended { .. }), "got {response:?}");

    // Pinned: the trace shows up in the slow list with its root named.
    let pinned = recorder::slow_traces();
    let entry = pinned
        .iter()
        .find(|p| p.trace == trace_id)
        .expect("forced-slow append must pin its trace");
    assert_eq!(recorder::name_of(entry.root_name_id), "append");
    assert!(!entry.error, "a successful append is slow, not errored");

    // The id as the slow-op log line prints it (16 hex digits) parses
    // back and resolves to the full tree — the operator's round trip
    // from log line to `/trace/<id>`.
    let logged = format!("{:016x}", entry.trace);
    let parsed = u64::from_str_radix(&logged, 16).unwrap();
    let spans = recorder::events_for(parsed);
    assert!(!spans.is_empty(), "logged id did not resolve");
    assert!(spans.iter().any(|s| recorder::name_of(s.name_id) == "batch_queue_wait"));
    std::fs::remove_dir_all(&dir).ok();
}
