//! Integration tests pinning the comparative *shapes* the evaluation
//! relies on: LedgerDB vs the QLDB/Fabric simulators.

use ledgerdb::baselines::fabric::{FabricConfig, FabricSim};
use ledgerdb::baselines::qldb::{QldbConfig, QldbSim};
use ledgerdb::clue::cm_tree::CmTree;
use ledgerdb::core::{LedgerConfig, LedgerDb, MemberRegistry, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;

fn ledger_with(n: u64, clue: &str) -> (LedgerDb, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"bl-ca");
    let alice = KeyPair::from_seed(b"bl-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    let mut ledger = LedgerDb::new(
        LedgerConfig { block_size: 64, fam_delta: 8, name: "bl".into(), state_backend: Default::default() },
        registry,
    );
    for i in 0..n {
        let req = TxRequest::signed(&alice, vec![i as u8; 128], vec![clue.to_string()], i);
        ledger.append_preverified(req).unwrap();
    }
    ledger.seal_block();
    (ledger, alice)
}

#[test]
fn qldb_lineage_scales_linearly_ledgerdb_does_not() {
    // Table II's core claim: QLDB lineage verification cost ~ m × verify,
    // LedgerDB's is one proof.
    let mut qldb = QldbSim::new(QldbConfig::default());
    for _ in 0..5 {
        qldb.insert("asset", vec![0u8; 256]);
    }
    let (_, q5) = qldb.verify_lineage("asset");
    for _ in 0..15 {
        qldb.insert("asset", vec![0u8; 256]);
    }
    let (_, q20) = qldb.verify_lineage("asset");
    assert!(
        q20.micros() > 3 * q5.micros(),
        "QLDB lineage must scale ~linearly: {} vs {}",
        q5.micros(),
        q20.micros()
    );

    let (ledger5, _) = ledger_with(5, "asset");
    let (ledger20, _) = ledger_with(20, "asset");
    let p5 = ledger5.prove_clue("asset").unwrap();
    let p20 = ledger20.prove_clue("asset").unwrap();
    CmTree::verify_client(&ledger5.clue_root(), &p5).unwrap();
    CmTree::verify_client(&ledger20.clue_root(), &p20).unwrap();
    // LedgerDB proof *overhead* (non-entry digests) stays logarithmic.
    assert!(p20.len() <= p5.len() + 8);
}

#[test]
fn fabric_latency_dominated_by_ordering() {
    let mut fabric = FabricSim::new(FabricConfig::default());
    let write = fabric.invoke("k", vec![0u8; 256]);
    // Writes pay about half the batching interval on average.
    assert!(write.micros() >= FabricConfig::default().ordering_batch_us / 2);
    let (_, read) = fabric.query_verify("k");
    assert!(read.micros() >= FabricConfig::default().ordering_batch_us);
}

#[test]
fn fabric_vs_ledgerdb_notarization_shape() {
    // Fig 10(a/b): LedgerDB kernel append is orders of magnitude faster
    // than Fabric's consensus write; verification latency gap ≥ 100×.
    let (mut ledger, alice) = ledger_with(64, "seed");
    let start = std::time::Instant::now();
    let batch = 256u64;
    for i in 1000..1000 + batch {
        let req = TxRequest::signed(&alice, vec![1u8; 256], vec![format!("n{i}")], i);
        ledger.append_preverified(req).unwrap();
    }
    ledger.seal_block();
    let ledger_per_tx = start.elapsed().as_micros() as u64 / batch as u128 as u64;

    let fabric = FabricSim::new(FabricConfig::default());
    let fabric_per_tx = 1_000_000.0 / fabric.write_tps(1 << 10);
    // Debug builds make the hashing-heavy kernel ~20× slower, so only
    // assert the throughput gap under optimization (the figures run
    // release).
    if !cfg!(debug_assertions) {
        assert!(
            (fabric_per_tx as u64) > 5 * ledger_per_tx,
            "Fabric {fabric_per_tx}us vs LedgerDB {ledger_per_tx}us"
        );
    }
    assert!(ledger_per_tx > 0);
}

#[test]
fn qldb_verify_includes_service_traversal() {
    let mut qldb = QldbSim::new(QldbConfig::default());
    qldb.insert("doc", vec![0u8; 1024]);
    let (ok, lat) = qldb.verify_revision(0);
    ok.unwrap();
    assert!(lat.micros() >= QldbConfig::default().verify_service_us);
}

#[test]
fn simulators_detect_forgeries_too() {
    // The baselines are real verifiers, not stubs: a forged revision
    // digest breaks QLDB verification.
    let mut qldb = QldbSim::new(QldbConfig::default());
    qldb.insert("doc", b"honest".to_vec());
    let (ok, _) = qldb.verify_revision(0);
    ok.unwrap();
    // Fabric: committed state round-trips through endorsement checks.
    let mut fabric = FabricSim::new(FabricConfig::default());
    fabric.invoke("k", b"value".to_vec());
    let (v, _) = fabric.query_verify("k");
    assert_eq!(v.unwrap(), b"value");
}
