//! Property tests for the `ledgerd` wire protocol: total decoding on
//! arbitrary byte soup, typed errors for truncated / oversized /
//! bit-flipped frames, and a live server that survives hostile streams
//! without panicking or wedging.
//!
//! Cases come from the deterministic in-repo harness
//! (`ledgerdb_bench::cases`).

use ledgerdb::core::{LedgerConfig, LedgerDb, MemberRegistry, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::wire::Wire;
use ledgerdb::server::protocol::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use ledgerdb::server::{Ledgerd, Request, Response, ServerConfig};
use ledgerdb_bench::cases::{run_cases, Gen};
use std::io::{Cursor, Write};
use std::net::TcpStream;
use std::time::Duration;

fn arbitrary_request(g: &mut Gen) -> Request {
    let keys = KeyPair::from_seed(&g.bytes(1..=16));
    match g.below(6) {
        0 => Request::Hello,
        1 => {
            let clues = (0..g.usize_in(0..=3)).map(|_| g.ident(1..=12)).collect();
            Request::Append(TxRequest::signed(&keys, g.bytes(0..=256), clues, g.u64()))
        }
        2 => Request::GetTx(g.u64()),
        3 => Request::ListTx(g.ident(1..=24)),
        4 => Request::GetAnchor,
        _ => Request::GetBlockFeed { from_height: g.u64(), max_blocks: g.u64() },
    }
}

/// Requests round trip bit-exactly for arbitrary content.
#[test]
fn requests_round_trip_arbitrary_content() {
    run_cases("protocol request round trip", 64, |g| {
        let request = arbitrary_request(g);
        let bytes = request.to_wire();
        let decoded = Request::from_wire(&bytes).expect("round trip decodes");
        assert_eq!(decoded.to_wire(), bytes, "re-encoding is canonical");
    });
}

/// Arbitrary byte soup decodes totally: an error or a value, no panics.
#[test]
fn byte_soup_never_panics() {
    run_cases("protocol byte soup total decode", 256, |g| {
        let soup = g.bytes(0..=512);
        let _ = Request::from_wire(&soup);
        let _ = Response::from_wire(&soup);
        let _ = read_frame(&mut Cursor::new(&soup), DEFAULT_MAX_FRAME);
    });
}

/// A valid frame that loses its tail decodes to a typed frame error —
/// never a partial value, never a panic.
#[test]
fn truncated_frames_yield_typed_errors() {
    run_cases("protocol truncated frames", 64, |g| {
        let request = arbitrary_request(g);
        let mut framed = Vec::new();
        write_frame(&mut framed, &request.to_wire()).unwrap();
        let cut = g.usize_in(0..=framed.len() - 1);
        match read_frame(&mut Cursor::new(&framed[..cut]), DEFAULT_MAX_FRAME) {
            Ok(body) => {
                // Only possible when the whole frame survived the cut —
                // it cannot, since cut < framed.len().
                panic!("truncated frame decoded to a {}-byte body", body.len());
            }
            Err(FrameError::Closed) => assert_eq!(cut, 0, "Closed only on empty input"),
            Err(FrameError::Io(_)) => {} // mid-frame EOF
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

/// Hostile frame headers: an arbitrary version byte and an arbitrary
/// (often lying) length prefix over a short tail. Every outcome is a
/// typed error or a complete body — and a prefix claiming more bytes
/// than the peer ever sends fails at the first short read instead of
/// being trusted with an up-front max-frame allocation.
#[test]
fn hostile_headers_yield_typed_errors() {
    run_cases("protocol hostile headers", 128, |g| {
        let version = g.bytes(1..=1)[0];
        let claimed = g.u64() as u32;
        let tail = g.bytes(0..=64);
        let mut framed = vec![version];
        framed.extend_from_slice(&claimed.to_be_bytes());
        framed.extend_from_slice(&tail);
        match read_frame(&mut Cursor::new(&framed), DEFAULT_MAX_FRAME) {
            Ok(body) => {
                // Only an honest header can deliver a body.
                assert_eq!(version, ledgerdb::server::protocol::PROTOCOL_VERSION);
                assert_eq!(body.len(), claimed as usize);
                assert!(claimed as usize <= tail.len());
            }
            Err(FrameError::BadVersion(v)) => assert_eq!(v, version),
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, claimed);
                assert_eq!(max, DEFAULT_MAX_FRAME);
            }
            Err(FrameError::Io(_)) => assert!((claimed as usize) > tail.len()),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

/// Truncation *inside the header* (cuts shorter than the 5-byte
/// version+length prefix) is always `Closed` (empty) or `Io` (partial),
/// for every claimed length.
#[test]
fn truncated_headers_yield_typed_errors() {
    run_cases("protocol truncated headers", 64, |g| {
        let mut framed = vec![ledgerdb::server::protocol::PROTOCOL_VERSION];
        framed.extend_from_slice(&(g.u64() as u32).to_be_bytes());
        let cut = g.usize_in(0..=4);
        match read_frame(&mut Cursor::new(&framed[..cut]), DEFAULT_MAX_FRAME) {
            Err(FrameError::Closed) => assert_eq!(cut, 0, "Closed only on empty input"),
            Err(FrameError::Io(_)) => assert!(cut >= 1),
            Ok(body) => panic!("headerless stream decoded to a {}-byte body", body.len()),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

/// A bit-flipped frame either still parses (flip landed in opaque
/// payload bytes) or fails with a typed error at the frame or body
/// layer. Nothing panics, nothing loops.
#[test]
fn bitflipped_frames_decode_totally() {
    run_cases("protocol bit flips", 128, |g| {
        let request = arbitrary_request(g);
        let mut framed = Vec::new();
        write_frame(&mut framed, &request.to_wire()).unwrap();
        let bit = g.below(framed.len() as u64 * 8);
        framed[(bit / 8) as usize] ^= 1 << (bit % 8);
        match read_frame(&mut Cursor::new(&framed), DEFAULT_MAX_FRAME) {
            Ok(body) => {
                let _ = Request::from_wire(&body); // must not panic
            }
            Err(
                FrameError::BadVersion(_) | FrameError::Oversized { .. } | FrameError::Io(_),
            ) => {}
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    });
}

/// A live server fed hostile streams answers with typed error frames or
/// hangs up — and keeps serving honest clients afterwards.
#[test]
fn live_server_survives_hostile_streams() {
    let ca = CertificateAuthority::from_seed(b"fuzz-ca");
    let alice = KeyPair::from_seed(b"fuzz-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    let ledger = LedgerDb::new(
        LedgerConfig { block_size: 4, fam_delta: 15, name: "fuzz".into(), state_backend: Default::default() },
        registry,
    );
    let server = Ledgerd::start(
        ledgerdb::core::SharedLedger::new(ledger),
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    run_cases("hostile streams against live ledgerd", 24, |g| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match g.below(3) {
            // Raw soup.
            0 => {
                stream.write_all(&g.bytes(1..=128)).unwrap();
            }
            // A well-formed frame wrapping soup.
            1 => {
                let _ = write_frame(&mut stream, &g.bytes(0..=128));
            }
            // A bit-flipped valid frame.
            _ => {
                let request = arbitrary_request(g);
                let mut framed = Vec::new();
                write_frame(&mut framed, &request.to_wire()).unwrap();
                let bit = g.below(framed.len() as u64 * 8);
                framed[(bit / 8) as usize] ^= 1 << (bit % 8);
                stream.write_all(&framed).unwrap();
            }
        }
        let _ = stream.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server answers: every frame must decode to
        // a Response (typically a typed error), then EOF. A wedged or
        // crashed server fails the read timeout instead.
        loop {
            match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
                Ok(body) => {
                    let _ = Response::from_wire(&body).expect("server frames always decode");
                }
                Err(FrameError::Closed) | Err(FrameError::Io(_)) => break,
                Err(e) => panic!("unexpected client-side frame error: {e}"),
            }
        }
        // One leftover hostile read path: the server must still be
        // accepting — probe with a minimal honest exchange.
        let mut probe = TcpStream::connect(addr).unwrap();
        probe.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_frame(&mut probe, &Request::GetAnchor.to_wire()).unwrap();
        let body = read_frame(&mut probe, DEFAULT_MAX_FRAME).unwrap();
        assert!(matches!(Response::from_wire(&body).unwrap(), Response::Anchor(_)));
    });

    // After all the abuse, a full honest session still works.
    let mut remote = ledgerdb::server::RemoteLedger::connect(addr).unwrap();
    let receipt = remote
        .append_committed_verified(TxRequest::signed(&alice, b"still alive".to_vec(), vec![], 1))
        .unwrap();
    assert!(receipt.verify());
    server.shutdown();
}
