//! End-to-end tests for the `ledgerd` service layer: concurrent
//! writers/readers over `SharedLedger` (group-commit and plain commit
//! paths), and the full distrusting round trip over TCP — including a
//! server kill + durable recovery with receipts that must keep
//! verifying client-side.

use ledgerdb::core::client::LedgerClient;
use ledgerdb::core::recovery::open_durable;
use ledgerdb::core::{LedgerConfig, LedgerDb, MemberRegistry, SharedLedger, TxRequest, VerifyLevel};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::server::batcher::CommitOutcome;
use ledgerdb::server::{Admission, BatchConfig, GroupCommitter, Ledgerd, RemoteLedger, ServerConfig};
use ledgerdb::storage::FsyncPolicy;
use ledgerdb::timesvc::clock::SimClock;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn registry(seed: &str) -> (MemberRegistry, KeyPair) {
    let ca = CertificateAuthority::from_seed(seed.as_bytes());
    let alice = KeyPair::from_seed(format!("{seed}-alice").as_bytes());
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, alice)
}

fn mem_shared(seed: &str, block_size: u64) -> (SharedLedger, KeyPair) {
    let (registry, alice) = registry(seed);
    let config = LedgerConfig { block_size, fam_delta: 15, name: format!("it-{seed}"), state_backend: Default::default() };
    (SharedLedger::new(LedgerDb::new(config, registry)), alice)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ledgerdb-it-server-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Satellite: N writers + M readers against one `SharedLedger`. Writers
/// push committed transactions (receipts issued under load); readers
/// hammer the proof path concurrently. Afterwards a distrusting client
/// replays the chain and every issued receipt must verify against it.
fn writers_and_readers(use_group_commit: bool) {
    const WRITERS: usize = 4;
    const READERS: usize = 3;
    const PER_WRITER: u64 = 25;

    let seed = if use_group_commit { "wr-batch" } else { "wr-plain" };
    let (shared, alice) = mem_shared(seed, 8);
    let committer = use_group_commit.then(|| {
        GroupCommitter::start(
            shared.clone(),
            BatchConfig { max_batch: 16, max_delay: Duration::from_millis(2) },
            Admission::Verify,
        )
    });
    let done = AtomicBool::new(false);

    let receipts = std::thread::scope(|scope| {
        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let shared = shared.clone();
                let committer = committer.as_ref();
                let alice = &alice;
                scope.spawn(move || {
                    (0..PER_WRITER)
                        .map(|i| {
                            let req = TxRequest::signed(
                                alice,
                                format!("w{w}-{i}").into_bytes(),
                                vec![format!("writer-{w}")],
                                (w as u64) * 10_000 + i,
                            );
                            match committer {
                                Some(c) => match c.submit(req, true).unwrap() {
                                    CommitOutcome::Committed(receipt) => receipt,
                                    other => panic!("expected receipt, got {other:?}"),
                                },
                                None => shared.append_committed(req).unwrap(),
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for r in 0..READERS {
            let shared = shared.clone();
            let done = &done;
            scope.spawn(move || {
                let mut probes = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let count = shared.journal_count();
                    if count == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    // Snapshot an anchor, prove a jsn under it, and the
                    // proof must verify at server level against the
                    // same snapshot.
                    let jsn = (r as u64 * 31 + probes * 7) % count;
                    let anchor = shared.anchor();
                    if let Ok((tx_hash, proof)) = shared.prove_existence(jsn, &anchor) {
                        shared
                            .verify_existence(jsn, &tx_hash, &proof, &anchor, VerifyLevel::Server)
                            .unwrap();
                    }
                    probes += 1;
                }
                assert!(probes > 0, "reader {r} never ran");
            });
        }
        let receipts: Vec<_> = writer_handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        done.store(true, Ordering::Relaxed);
        receipts
    });
    if let Some(c) = &committer {
        c.shutdown();
    }

    assert_eq!(receipts.len(), WRITERS * PER_WRITER as usize);
    assert_eq!(shared.journal_count(), WRITERS as u64 * PER_WRITER);

    // A distrusting replica replays the chain; every receipt issued
    // under concurrency must verify against the final verified state.
    let mut client = LedgerClient::new(shared.lsp_public_key(), shared.fam_delta());
    client.sync(&shared.blocks_from(0, u64::MAX)).unwrap();
    assert_eq!(client.verified_journals(), WRITERS as u64 * PER_WRITER);
    for receipt in &receipts {
        client.verify_receipt(receipt).unwrap();
    }
}

#[test]
fn concurrent_writers_and_readers_group_commit() {
    writers_and_readers(true);
}

#[test]
fn concurrent_writers_and_readers_plain_commit() {
    writers_and_readers(false);
}

/// Acceptance: acked receipts keep verifying through a fresh
/// `RemoteLedger` after the server dies and the ledger recovers from
/// disk.
#[test]
fn remote_receipts_survive_server_restart_and_recovery() {
    const N: u64 = 12;
    let dir = temp_dir("restart");
    let seed = "restart";
    let config = || LedgerConfig { block_size: 4, fam_delta: 15, name: "it-restart".into(), state_backend: Default::default() };

    // Generation 1: durable ledger behind a group-commit server. The
    // streams run at fsync=never — the batcher supplies the barrier.
    let (registry1, alice) = registry(seed);
    let (ledger, report) = open_durable(
        config(),
        registry1,
        &dir,
        FsyncPolicy::Never,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert!(report.is_clean());
    let server = Ledgerd::start(
        SharedLedger::new(ledger),
        ServerConfig { batch: Some(BatchConfig::default()), ..ServerConfig::default() },
    )
    .unwrap();

    let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
    let receipts: Vec<_> = (0..N)
        .map(|i| {
            remote
                .append_committed_verified(TxRequest::signed(
                    &alice,
                    format!("persist-{i}").into_bytes(),
                    vec!["persist".into()],
                    i,
                ))
                .unwrap()
        })
        .collect();
    // Proofs work pre-restart too.
    let (tx_hash, proof) = remote.prove(N / 2).unwrap();
    remote.server_verify(N / 2, tx_hash, proof).unwrap();
    drop(remote);
    server.shutdown();
    drop(server);

    // Generation 2: recover from disk — every acked journal must be
    // there, cleanly.
    let (registry2, _) = registry(seed);
    let (ledger, report) = open_durable(
        config(),
        registry2,
        &dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
    )
    .unwrap();
    assert!(report.is_clean(), "recovery after graceful kill must be clean: {report:?}");
    assert_eq!(ledger.journal_count(), N);

    let server = Ledgerd::start(SharedLedger::new(ledger), ServerConfig::default()).unwrap();
    let mut remote = RemoteLedger::connect(server.local_addr()).unwrap();
    remote.sync().unwrap();
    assert_eq!(remote.client().verified_journals(), N);
    // The receipts issued by the dead server verify against the chain
    // the fresh distrusting client replayed from the recovered ledger.
    for receipt in &receipts {
        remote.client().verify_receipt(receipt).unwrap();
    }
    // And the journals are still provable against the new client's
    // own anchor.
    for jsn in 0..N {
        remote.prove(jsn).unwrap();
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The group-commit ack contract under load: a burst of concurrent
/// remote appenders, every ack durable, totals exact.
#[test]
fn concurrent_remote_clients_group_commit() {
    const CLIENTS: usize = 6;
    const PER_CLIENT: u64 = 10;
    let (shared, alice) = mem_shared("remote-burst", 16);
    let server = Ledgerd::start(
        shared.clone(),
        ServerConfig {
            batch: Some(BatchConfig { max_batch: 32, max_delay: Duration::from_millis(2) }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut jsns: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let alice = &alice;
                scope.spawn(move || {
                    let mut remote = RemoteLedger::connect(addr).unwrap();
                    (0..PER_CLIENT)
                        .map(|i| {
                            let (jsn, _) = remote
                                .append(TxRequest::signed(
                                    alice,
                                    format!("c{c}-{i}").into_bytes(),
                                    vec![],
                                    (c as u64) * 1000 + i,
                                ))
                                .unwrap();
                            jsn
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    jsns.sort_unstable();
    let expect: Vec<u64> = (0..CLIENTS as u64 * PER_CLIENT).collect();
    assert_eq!(jsns, expect, "every ack names a distinct jsn, no gaps");
    server.shutdown();
    assert_eq!(shared.journal_count(), CLIENTS as u64 * PER_CLIENT);
}
