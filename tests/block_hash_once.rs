//! Block-header hash memoization, pinned by a process-global counter —
//! which is why this test lives in its own integration binary: no other
//! test may touch `block_hash_computations()`.
//!
//! Growing a 1,000-block chain must hash each header exactly once, even
//! though every seal reads the previous block's hash and every
//! receipt/anchor read touches headers again.

use ledgerdb::core::types::block_hash_computations;
use ledgerdb::core::{LedgerConfig, LedgerDb, MemberRegistry, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;

#[test]
fn thousand_block_chain_hashes_each_header_exactly_once() {
    let ca = CertificateAuthority::from_seed(b"once-ca");
    let alice = KeyPair::from_seed(b"once-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    let config = LedgerConfig { block_size: 1, fam_delta: 12, name: "once".into(), state_backend: Default::default() };
    let mut ledger = LedgerDb::new(config, registry);

    let blocks = 1000u64;
    let before = block_hash_computations();
    for i in 0..blocks {
        let req = TxRequest::signed(&alice, format!("b-{i}").into_bytes(), vec![], i);
        ledger.append(req).unwrap();
        // block_size 1: the append auto-seals — each seal links to the
        // previous header via its (memoized) hash.
    }
    assert_eq!(ledger.block_count(), blocks);
    let sealed = block_hash_computations() - before;
    assert_eq!(
        sealed, blocks,
        "sealing {blocks} blocks must compute exactly {blocks} header hashes"
    );

    // Re-reading the chain — receipts, anchors, feeds — recomputes
    // nothing: every header hash is already memoized.
    let before = block_hash_computations();
    for jsn in 0..blocks {
        assert!(ledger.receipt(jsn).unwrap().is_some());
    }
    let mut prev = None;
    for block in ledger.blocks() {
        let h = block.hash();
        if let Some(prev) = prev {
            assert_eq!(block.prev_block_hash, prev, "chain must link");
        }
        prev = Some(h);
    }
    assert_eq!(
        block_hash_computations() - before,
        0,
        "re-reading the chain must hit the memo every time"
    );
}
