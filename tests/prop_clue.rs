//! Property-based tests for the clue layer: CM-Tree vs ccMPT agreement,
//! lineage completeness, and proof tamper-resistance under arbitrary
//! workloads.

use ledgerdb::accumulator::tim::TimAccumulator;
use ledgerdb::clue::ccmpt::CcMpt;
use ledgerdb::clue::cm_tree::CmTree;
use ledgerdb::clue::csl::ClueSkipList;
use ledgerdb::crypto::{hash_leaf, Digest};
use proptest::prelude::*;

/// A workload: journal i belongs to clue `assignments[i]` (small alphabet
/// so clues collide heavily).
fn build(
    assignments: &[u8],
) -> (CmTree, CcMpt, ClueSkipList, TimAccumulator, Vec<Digest>, Vec<String>) {
    let mut cm = CmTree::new();
    let mut cc = CcMpt::new();
    let mut csl = ClueSkipList::new();
    let mut ledger = TimAccumulator::new();
    let mut digests = Vec::new();
    let mut clues: Vec<String> = Vec::new();
    for (jsn, &a) in assignments.iter().enumerate() {
        let clue = format!("clue-{}", a % 7);
        let d = hash_leaf(&[a, jsn as u8, (jsn >> 8) as u8]);
        cm.append(&clue, jsn as u64, d);
        cc.append(&clue, jsn as u64);
        csl.append(&clue, jsn as u64);
        ledger.append(d);
        digests.push(d);
        if !clues.contains(&clue) {
            clues.push(clue);
        }
    }
    (cm, cc, csl, ledger, digests, clues)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three indexes agree on per-clue entry counts and jsn lists.
    #[test]
    fn indexes_agree(assignments in prop::collection::vec(any::<u8>(), 1..120)) {
        let (cm, cc, csl, _, _, clues) = build(&assignments);
        for clue in &clues {
            prop_assert_eq!(cm.entry_count(clue), cc.entry_count(clue));
            prop_assert_eq!(cm.entry_count(clue) as usize, csl.entry_count(clue));
            prop_assert_eq!(cm.jsns(clue), cc.jsns(clue));
            prop_assert_eq!(cm.jsns(clue).to_vec(), csl.list(clue));
        }
    }

    /// Every clue's full lineage verifies through both CM-Tree and ccMPT.
    #[test]
    fn both_structures_verify(assignments in prop::collection::vec(any::<u8>(), 1..100)) {
        let (cm, cc, _, ledger, digests, clues) = build(&assignments);
        let cm_root = cm.root();
        let cc_root = cc.root();
        let ledger_root = ledger.root();
        for clue in &clues {
            let p1 = cm.prove_all(clue).unwrap();
            prop_assert!(CmTree::verify_client(&cm_root, &p1).is_ok());
            let p2 = cc.prove(clue, &ledger, |j| digests.get(j as usize).copied()).unwrap();
            prop_assert!(CcMpt::verify(&cc_root, &ledger_root, &p2).is_ok());
        }
    }

    /// Dropping or tampering any entry in a CM-Tree proof fails it.
    #[test]
    fn cm_tree_tamper_resistance(
        assignments in prop::collection::vec(any::<u8>(), 3..80),
        victim in any::<prop::sample::Index>(),
    ) {
        let (cm, _, _, _, _, clues) = build(&assignments);
        let cm_root = cm.root();
        let clue = &clues[victim.index(clues.len())];
        let proof = cm.prove_all(clue).unwrap();
        if proof.entries.len() > 1 {
            let mut dropped = proof.clone();
            dropped.entries.remove(victim.index(dropped.entries.len()));
            prop_assert!(CmTree::verify_client(&cm_root, &dropped).is_err());
        }
        let mut tampered = proof.clone();
        let i = victim.index(tampered.entries.len());
        tampered.entries[i].1 = hash_leaf(b"tampered");
        prop_assert!(CmTree::verify_client(&cm_root, &tampered).is_err());
    }

    /// Arbitrary version sub-ranges verify and carry exactly the range.
    #[test]
    fn range_proofs_hold(
        assignments in prop::collection::vec(0u8..3, 5..60),
        lo_pick in any::<prop::sample::Index>(),
        hi_pick in any::<prop::sample::Index>(),
    ) {
        let (cm, _, _, _, _, clues) = build(&assignments);
        let cm_root = cm.root();
        // Pick the most populated clue.
        let clue = clues.iter().max_by_key(|c| cm.entry_count(c)).unwrap().clone();
        let count = cm.entry_count(&clue);
        prop_assume!(count >= 2);
        let a = lo_pick.index(count as usize) as u64;
        let b = hi_pick.index(count as usize) as u64;
        let (lo, hi) = if a < b { (a, b + 1) } else { (b, a + 1) };
        // Reconstruct per-version digests from the recorded jsn list.
        let jsns = cm.jsns(&clue).to_vec();
        let digest_of = |v: u64| {
            jsns.get(v as usize).map(|&j| {
                hash_leaf(&[assignments[j as usize], j as u8, (j >> 8) as u8])
            })
        };
        let proof = cm.prove_range(&clue, lo, hi, digest_of).unwrap();
        prop_assert_eq!(proof.entries.len() as u64, hi - lo);
        prop_assert!(CmTree::verify_client(&cm_root, &proof).is_ok());
    }

    /// ccMPT proofs break when the counter is inconsistent with entries.
    #[test]
    fn ccmpt_counter_binding(assignments in prop::collection::vec(0u8..2, 4..50)) {
        let (_, cc, _, ledger, digests, clues) = build(&assignments);
        let cc_root = cc.root();
        let ledger_root = ledger.root();
        let clue = clues.iter().max_by_key(|c| cc.entry_count(c)).unwrap();
        prop_assume!(cc.entry_count(clue) >= 2);
        let mut proof = cc.prove(clue, &ledger, |j| digests.get(j as usize).copied()).unwrap();
        proof.entries.pop();
        prop_assert!(CcMpt::verify(&cc_root, &ledger_root, &proof).is_err());
    }

    /// The skip list answers range queries consistently with the full list.
    #[test]
    fn csl_range_consistency(
        assignments in prop::collection::vec(0u8..3, 1..80),
        lo in 0u64..40,
        width in 0u64..40,
    ) {
        let (_, _, csl, _, _, clues) = build(&assignments);
        for clue in &clues {
            let all = csl.list(clue);
            let hi = lo + width;
            let expect: Vec<u64> = all.iter().copied().filter(|&j| j >= lo && j <= hi).collect();
            prop_assert_eq!(csl.range(clue, lo, hi), expect);
        }
    }
}
