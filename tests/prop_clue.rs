//! Property-based tests for the clue layer: CM-Tree vs ccMPT agreement,
//! lineage completeness, and proof tamper-resistance under arbitrary
//! workloads.
//!
//! Cases come from the deterministic in-repo harness
//! (`ledgerdb_bench::cases`); see that module for the seeding scheme.

use ledgerdb::accumulator::tim::TimAccumulator;
use ledgerdb::clue::ccmpt::CcMpt;
use ledgerdb::clue::cm_tree::CmTree;
use ledgerdb::clue::csl::ClueSkipList;
use ledgerdb::crypto::{hash_leaf, Digest};
use ledgerdb_bench::cases::{run_cases, Gen};

/// A workload: journal i belongs to clue `assignments[i]` (small alphabet
/// so clues collide heavily).
fn build(
    assignments: &[u8],
) -> (CmTree, CcMpt, ClueSkipList, TimAccumulator, Vec<Digest>, Vec<String>) {
    let mut cm = CmTree::new();
    let mut cc = CcMpt::new();
    let mut csl = ClueSkipList::new();
    let mut ledger = TimAccumulator::new();
    let mut digests = Vec::new();
    let mut clues: Vec<String> = Vec::new();
    for (jsn, &a) in assignments.iter().enumerate() {
        let clue = format!("clue-{}", a % 7);
        let d = hash_leaf(&[a, jsn as u8, (jsn >> 8) as u8]);
        cm.append(&clue, jsn as u64, d);
        cc.append(&clue, jsn as u64);
        csl.append(&clue, jsn as u64);
        ledger.append(d);
        digests.push(d);
        if !clues.contains(&clue) {
            clues.push(clue);
        }
    }
    (cm, cc, csl, ledger, digests, clues)
}

/// Assignments over a narrow alphabet so clues collide heavily.
fn assignments(g: &mut Gen, len: std::ops::RangeInclusive<usize>, alphabet: u64) -> Vec<u8> {
    let n = g.usize_in(len);
    (0..n).map(|_| g.below(alphabet) as u8).collect()
}

/// All three indexes agree on per-clue entry counts and jsn lists.
#[test]
fn indexes_agree() {
    run_cases("indexes agree", 48, |g| {
        let workload = g.bytes(1..=119);
        let (cm, cc, csl, _, _, clues) = build(&workload);
        for clue in &clues {
            assert_eq!(cm.entry_count(clue), cc.entry_count(clue));
            assert_eq!(cm.entry_count(clue) as usize, csl.entry_count(clue));
            assert_eq!(cm.jsns(clue), cc.jsns(clue));
            assert_eq!(cm.jsns(clue).to_vec(), csl.list(clue));
        }
    });
}

/// Every clue's full lineage verifies through both CM-Tree and ccMPT.
#[test]
fn both_structures_verify() {
    run_cases("both structures verify", 48, |g| {
        let workload = g.bytes(1..=99);
        let (cm, cc, _, ledger, digests, clues) = build(&workload);
        let cm_root = cm.root();
        let cc_root = cc.root();
        let ledger_root = ledger.root();
        for clue in &clues {
            let p1 = cm.prove_all(clue).unwrap();
            assert!(CmTree::verify_client(&cm_root, &p1).is_ok());
            let p2 = cc.prove(clue, &ledger, |j| digests.get(j as usize).copied()).unwrap();
            assert!(CcMpt::verify(&cc_root, &ledger_root, &p2).is_ok());
        }
    });
}

/// Dropping or tampering any entry in a CM-Tree proof fails it.
#[test]
fn cm_tree_tamper_resistance() {
    run_cases("cm tree tamper resistance", 48, |g| {
        let workload = g.bytes(3..=79);
        let (cm, _, _, _, _, clues) = build(&workload);
        let cm_root = cm.root();
        let clue = &clues[g.below(clues.len() as u64) as usize];
        let proof = cm.prove_all(clue).unwrap();
        if proof.entries.len() > 1 {
            let mut dropped = proof.clone();
            let i = g.below(dropped.entries.len() as u64) as usize;
            dropped.entries.remove(i);
            assert!(CmTree::verify_client(&cm_root, &dropped).is_err());
        }
        let mut tampered = proof.clone();
        let i = g.below(tampered.entries.len() as u64) as usize;
        tampered.entries[i].1 = hash_leaf(b"tampered");
        assert!(CmTree::verify_client(&cm_root, &tampered).is_err());
    });
}

/// Arbitrary version sub-ranges verify and carry exactly the range.
#[test]
fn range_proofs_hold() {
    run_cases("range proofs hold", 48, |g| {
        let workload = assignments(g, 5..=59, 3);
        let (cm, _, _, _, _, clues) = build(&workload);
        let cm_root = cm.root();
        // Pick the most populated clue.
        let clue = clues.iter().max_by_key(|c| cm.entry_count(c)).unwrap().clone();
        let count = cm.entry_count(&clue);
        if count < 2 {
            return;
        }
        let a = g.below(count);
        let b = g.below(count);
        let (lo, hi) = if a < b { (a, b + 1) } else { (b, a + 1) };
        // Reconstruct per-version digests from the recorded jsn list.
        let jsns = cm.jsns(&clue).to_vec();
        let digest_of = |v: u64| {
            jsns.get(v as usize)
                .map(|&j| hash_leaf(&[workload[j as usize], j as u8, (j >> 8) as u8]))
        };
        let proof = cm.prove_range(&clue, lo, hi, digest_of).unwrap();
        assert_eq!(proof.entries.len() as u64, hi - lo);
        assert!(CmTree::verify_client(&cm_root, &proof).is_ok());
    });
}

/// ccMPT proofs break when the counter is inconsistent with entries.
#[test]
fn ccmpt_counter_binding() {
    run_cases("ccmpt counter binding", 48, |g| {
        let workload = assignments(g, 4..=49, 2);
        let (_, cc, _, ledger, digests, clues) = build(&workload);
        let cc_root = cc.root();
        let ledger_root = ledger.root();
        let clue = clues.iter().max_by_key(|c| cc.entry_count(c)).unwrap();
        if cc.entry_count(clue) < 2 {
            return;
        }
        let mut proof = cc.prove(clue, &ledger, |j| digests.get(j as usize).copied()).unwrap();
        proof.entries.pop();
        assert!(CcMpt::verify(&cc_root, &ledger_root, &proof).is_err());
    });
}

/// The skip list answers range queries consistently with the full list.
#[test]
fn csl_range_consistency() {
    run_cases("csl range consistency", 48, |g| {
        let workload = assignments(g, 1..=79, 3);
        let lo = g.below(40);
        let width = g.below(40);
        let (_, _, csl, _, _, clues) = build(&workload);
        for clue in &clues {
            let all = csl.list(clue);
            let hi = lo + width;
            let expect: Vec<u64> = all.iter().copied().filter(|&j| j >= lo && j <= hi).collect();
            assert_eq!(csl.range(clue, lo, hi), expect);
        }
    });
}
