//! Facade crate re-exporting the full LedgerDB reproduction API.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use ledgerdb_accumulator as accumulator;
pub use ledgerdb_baselines as baselines;
pub use ledgerdb_bintrie as bintrie;
pub use ledgerdb_clue as clue;
pub use ledgerdb_core as core;
pub use ledgerdb_crypto as crypto;
pub use ledgerdb_mpt as mpt;
pub use ledgerdb_pool as pool;
pub use ledgerdb_server as server;
pub use ledgerdb_storage as storage;
pub use ledgerdb_telemetry as telemetry;
pub use ledgerdb_timesvc as timesvc;
