//! An external auditor who does **not** trust the LSP (§II-C, manner 2).
//!
//! The auditor runs a [`LedgerClient`]: it downloads sealed blocks,
//! re-derives every accumulator root in its own fam replica, and then
//! verifies receipts and proofs that arrive as raw bytes — exactly what a
//! third party would do against a cloud LSP it cannot inspect. The demo
//! ends with the LSP attempting to serve a tampered history and the
//! client catching it.
//!
//! Run with: `cargo run --release --example external_auditor`

use ledgerdb::core::{LedgerClient, LedgerConfig, LedgerDb, MemberRegistry, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::sha256;
use ledgerdb::crypto::wire::Wire;

fn main() {
    // --- The LSP side (opaque to the auditor) --------------------------
    let ca = CertificateAuthority::from_seed(b"auditor-ca");
    let alice = KeyPair::from_seed(b"auditor-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    let mut ledger = LedgerDb::new(
        LedgerConfig { block_size: 8, fam_delta: 8, name: "audited".into(), state_backend: Default::default() },
        registry,
    );
    for i in 0..64u64 {
        let req = TxRequest::signed(
            &alice,
            format!("evidence item {i}").into_bytes(),
            vec![format!("case-{}", i % 4)],
            i,
        );
        ledger.append(req).unwrap();
    }
    ledger.seal_block();

    // --- The auditor side ----------------------------------------------
    // All the auditor knows a priori: the LSP's public key and the fam δ.
    let mut auditor = LedgerClient::new(*ledger.lsp_public_key(), ledger.fam_delta());

    // 1. Sync: download blocks, replay every journal digest locally.
    let report = auditor.sync(ledger.blocks()).unwrap();
    println!(
        "sync: accepted {} blocks / {} journals; replica root {}",
        report.blocks_accepted,
        report.journals_replayed,
        auditor.journal_root()
    );
    assert_eq!(auditor.journal_root(), ledger.journal_root());

    // 2. Verify a receipt delivered as bytes.
    let receipt_bytes = ledger.receipt(17).unwrap().unwrap().to_wire();
    let receipt = auditor.verify_receipt_bytes(&receipt_bytes).unwrap();
    println!("receipt for jsn {} verified ({} bytes on the wire)", receipt.jsn, receipt_bytes.len());

    // 3. Verify an existence proof generated against the auditor's anchor.
    let anchor = auditor.anchor();
    let (tx_hash, proof) = ledger.prove_existence(42, &anchor).unwrap();
    let proof_bytes = proof.to_wire();
    auditor.verify_existence_bytes(&tx_hash, &proof_bytes).unwrap();
    println!("existence of jsn 42 verified ({} bytes of proof)", proof_bytes.len());

    // 4. Verify a complete case lineage from bytes.
    let clue_bytes = ledger.prove_clue("case-2").unwrap().to_wire();
    let clue_proof = auditor.verify_clue_bytes(&clue_bytes).unwrap();
    println!(
        "lineage 'case-2' verified: {} records ({} bytes of proof)",
        clue_proof.entries.len(),
        clue_bytes.len()
    );

    // 5. The LSP turns malicious: it rewrites one journal in the history
    //    it serves (threat-B). A fresh auditor catches it mid-sync.
    let mut tampered = ledger.blocks().to_vec();
    tampered[4].tx_hashes[3] = sha256(b"the journal the LSP wants you to see");
    let mut fresh_auditor = LedgerClient::new(*ledger.lsp_public_key(), ledger.fam_delta());
    match fresh_auditor.sync(&tampered) {
        Err(e) => println!("tampered history rejected during sync: {e}"),
        Ok(_) => unreachable!("a tampered block feed must not verify"),
    }
    println!(
        "auditor accepted only {} blocks of the tampered feed (all pre-tamper)",
        fresh_auditor.height()
    );
}
