//! The paper's motivating scenario (§I): a national Grain-Cotton-Oil
//! supply chain. Banks, manufacturers, retailers, suppliers and
//! warehouses append manuscripts, invoice copies and receipts to an
//! auditable ledger; any external party can later audit any record in
//! terms of what-when-who.
//!
//! Demonstrates: multiple certified members, per-shipment clue lineage,
//! T-Ledger time anchoring, an external (client-side) audit, and a
//! regulator-approved occult of a record that leaked personal data.
//!
//! Run with: `cargo run --release --example supply_chain`

use ledgerdb::clue::cm_tree::CmTree;
use ledgerdb::core::{
    audit_ledger, AuditConfig, LedgerConfig, LedgerDb, MemberRegistry, OccultMode, TxRequest,
    VerifyLevel,
};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;
use ledgerdb::timesvc::clock::Clock;
use ledgerdb::timesvc::tledger::{TLedger, TLedgerConfig};
use ledgerdb::timesvc::tsa::TsaPool;
use std::sync::Arc;

fn main() {
    // --- Participants -------------------------------------------------
    let ca = CertificateAuthority::from_seed(b"gco-root-ca");
    let participants: Vec<(&str, KeyPair)> = [
        "grain-warehouse",
        "cotton-retailer",
        "oil-manufacturer",
        "settlement-bank",
        "logistics-supplier",
    ]
    .iter()
    .map(|name| (*name, KeyPair::from_seed(name.as_bytes())))
    .collect();
    let dba = KeyPair::from_seed(b"gco-dba");
    let regulator = KeyPair::from_seed(b"gco-regulator");

    let mut registry = MemberRegistry::new(*ca.public_key());
    for (name, keys) in &participants {
        registry.register(ca.issue(name, Role::User, keys.public())).unwrap();
    }
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
    registry
        .register(ca.issue("regulator", Role::Regulator, regulator.public()))
        .unwrap();

    let config = LedgerConfig { block_size: 8, fam_delta: 12, name: "gco-supply-chain".into(), state_backend: Default::default() };
    let mut ledger = LedgerDb::new(config, registry);

    // --- Time notary ----------------------------------------------------
    let clock: Arc<dyn Clock> = Arc::clone(ledger.clock());
    let tsa_pool = Arc::new(TsaPool::new(2, Arc::clone(&clock)));
    let tledger = TLedger::new(TLedgerConfig::default(), Arc::clone(&clock), tsa_pool);

    // --- A shipment's lifecycle under one clue ------------------------
    let shipment = "GCO-SHIP-2026-0117";
    let lifecycle = [
        (0usize, "grain intake manuscript: 40t wheat, moisture 12.1%"),
        (4, "logistics pickup receipt: truck SH-A-88231"),
        (2, "refinery acceptance: lot OIL-55, yield 38.2%"),
        (3, "letter of credit drawn: CNY 1,240,000"),
        (1, "retail settlement confirmation: order RC-4411"),
    ];
    let mut nonce = 0u64;
    #[allow(clippy::explicit_counter_loop)] // nonce outlives the loop
    for (who, doc) in lifecycle {
        let (name, keys) = &participants[who];
        let request = TxRequest::signed(
            keys,
            format!("[{name}] {doc}").into_bytes(),
            vec![shipment.to_string()],
            nonce,
        );
        let ack = ledger.append(request).unwrap();
        println!("{name:<20} -> jsn {}", ack.jsn);
        nonce += 1;
    }

    // Unrelated traffic interleaves on the same ledger.
    for i in 0..20u64 {
        let (_, keys) = &participants[(i % 5) as usize];
        let request = TxRequest::signed(
            keys,
            format!("unrelated record {i}").into_bytes(),
            vec![format!("GCO-SHIP-2026-{:04}", 200 + i)],
            1000 + i,
        );
        ledger.append(request).unwrap();
    }

    // Periodic time anchoring (when).
    ledger.anchor_time(&tledger).unwrap();
    tledger.finalize_now().unwrap();
    ledger.seal_block();

    // --- External lineage audit of the shipment -----------------------
    // The auditor holds only the published CM-Tree root and the proof.
    let cm_root = ledger.clue_root();
    let proof = ledger.prove_clue(shipment).unwrap();
    CmTree::verify_client(&cm_root, &proof).unwrap();
    println!(
        "\nshipment {shipment}: {} records verified as the complete lineage",
        proof.entries.len()
    );
    assert_eq!(proof.entries.len(), 5, "N-lineage covers exactly the 5 lifecycle records");

    // Read the full trail back via ListTx.
    for jsn in ledger.list_tx(shipment) {
        let payload = ledger.get_payload(jsn).unwrap();
        println!("  jsn {:>3}: {}", jsn, String::from_utf8_lossy(&payload));
    }

    // --- A regulatory intervention -------------------------------------
    // The pickup receipt leaked a driver's personal data; the regulator
    // and DBA co-sign an occult (Prerequisite 2). Verification of the
    // ledger remains intact (Protocol 2).
    let leaked_jsn = 1;
    let digest = ledger.occult_approval_digest(leaked_jsn);
    let mut approvals = MultiSignature::new();
    approvals.add(&dba, &digest);
    approvals.add(&regulator, &digest);
    ledger.occult(leaked_jsn, approvals, OccultMode::Sync).unwrap();
    assert!(ledger.get_tx(leaked_jsn).is_err(), "occulted record is unreadable");
    println!("\njsn {leaked_jsn} occulted by regulator+DBA; retrieval blocked");

    // Existence verification still passes via the retained hash.
    let anchor = ledger.anchor();
    let (tx_hash, fam_proof) = ledger.prove_existence(leaked_jsn, &anchor).unwrap();
    ledger
        .verify_existence(leaked_jsn, &tx_hash, &fam_proof, &anchor, VerifyLevel::Client)
        .unwrap();
    println!("occulted record still existence-verifiable (retained hash)");

    // --- Full Dasein-complete audit ------------------------------------
    ledger.seal_block();
    let report = audit_ledger(
        &ledger,
        &AuditConfig { tledger_key: Some(*tledger.public_key()), ..Default::default() },
    )
    .unwrap();
    println!(
        "\nfull audit: {} journals / {} blocks / {} signatures checked, {} occult journal(s) validated",
        report.journals_checked, report.blocks_checked, report.signatures_checked, report.occult_journals
    );
}
