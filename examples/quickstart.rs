//! Quickstart: create a ledger, register members, append signed journals,
//! and verify all three Dasein factors — what (existence), when
//! (T-Ledger-backed timestamps), who (signatures) — ending with a full
//! Dasein-complete audit.
//!
//! Run with: `cargo run --release --example quickstart`

use ledgerdb::core::{audit_ledger, AuditConfig, LedgerConfig, LedgerDb, MemberRegistry, TxRequest, VerifyLevel};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::timesvc::clock::Clock;
use ledgerdb::timesvc::tledger::{TLedger, TLedgerConfig};
use ledgerdb::timesvc::tsa::TsaPool;
use std::sync::Arc;

fn main() {
    // 1. Identities: a CA certifies every participant's key (§II-B).
    let ca = CertificateAuthority::from_seed(b"example-root-ca");
    let alice = KeyPair::from_seed(b"alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();

    // 2. Create the ledger.
    let config = LedgerConfig { block_size: 4, fam_delta: 10, name: "quickstart".into(), state_backend: Default::default() };
    let mut ledger = LedgerDb::new(config, registry);
    println!("ledger id: {}", ledger.id());

    // 3. Append client-signed journals (π_c travels with each request).
    for (i, doc) in ["invoice #1", "invoice #2", "receipt #3", "manifest #4"]
        .iter()
        .enumerate()
    {
        let request = TxRequest::signed(
            &alice,
            doc.as_bytes().to_vec(),
            vec!["orders-2026".to_string()],
            i as u64,
        );
        let ack = ledger.append(request).unwrap();
        println!("appended jsn {} tx-hash {}", ack.jsn, ack.tx_hash);
    }

    // 4. who + receipt: the LSP-signed receipt π_s for journal 0.
    let receipt = ledger.receipt(0).unwrap().expect("block sealed");
    assert!(receipt.verify());
    println!("receipt for jsn 0 verified (block hash {})", receipt.block_hash);

    // 5. what: client-side existence verification via the fam tree.
    let anchor = ledger.anchor();
    let (tx_hash, proof) = ledger.prove_existence(2, &anchor).unwrap();
    ledger
        .verify_existence(2, &tx_hash, &proof, &anchor, VerifyLevel::Client)
        .unwrap();
    println!("existence of jsn 2 verified against root {}", ledger.journal_root());

    // 6. when: anchor the ledger to a T-Ledger two-way pegged to a TSA
    //    pool (Protocols 3 + 4).
    let clock: Arc<dyn Clock> = Arc::clone(ledger.clock());
    let tsa_pool = Arc::new(TsaPool::new(3, Arc::clone(&clock)));
    let tledger = TLedger::new(TLedgerConfig::default(), clock, tsa_pool);
    let time_ack = ledger.anchor_time(&tledger).unwrap();
    tledger.finalize_now().unwrap();
    println!("time journal anchored at jsn {}", time_ack.jsn);

    // 7. N-lineage: verify the whole clue trail in one shot (§IV).
    ledger.seal_block();
    let clue_proof = ledger.prove_clue("orders-2026").unwrap();
    ledger.verify_clue(&clue_proof, VerifyLevel::Client).unwrap();
    println!(
        "clue 'orders-2026' verified: {} journals, proof carries {} digests",
        clue_proof.entries.len(),
        clue_proof.len()
    );

    // 8. The Dasein-complete audit (§V).
    let audit_config = AuditConfig {
        tledger_key: Some(*tledger.public_key()),
        ..Default::default()
    };
    let report = audit_ledger(&ledger, &audit_config).unwrap();
    println!(
        "audit passed: {} journals, {} blocks, {} signatures, {} time journals",
        report.journals_checked,
        report.blocks_checked,
        report.signatures_checked,
        report.time_journals
    );
}
