//! Verifiable mutation (§III-A2): a bank ledger purges obsolete history
//! while keeping the current state provably derived from it.
//!
//! "We seldom care about our obsolete bank statements that were ten years
//! ago. But we have to make sure that our current balance is correctly
//! derived from all historical transactions." Milestone journals (block
//! trades) are pinned to the survival stream before purging.
//!
//! Run with: `cargo run --release --example purge_and_survival`

use ledgerdb::core::{audit_ledger, AuditConfig, LedgerConfig, LedgerDb, MemberRegistry, TxRequest, VerifyLevel};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::crypto::multisig::MultiSignature;

fn main() {
    let ca = CertificateAuthority::from_seed(b"bank-ca");
    let bank = KeyPair::from_seed(b"bank-ops");
    let broker = KeyPair::from_seed(b"broker");
    let dba = KeyPair::from_seed(b"bank-dba");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("bank-ops", Role::User, bank.public())).unwrap();
    registry.register(ca.issue("broker", Role::User, broker.public())).unwrap();
    registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();

    let config = LedgerConfig { block_size: 8, fam_delta: 10, name: "bank".into(), state_backend: Default::default() };
    let mut ledger = LedgerDb::new(config, registry);

    // Ten years of statements; jsn 13 is a milestone block trade.
    for i in 0..40u64 {
        let (keys, doc) = if i == 13 {
            (&broker, "BLOCK TRADE: 2,000,000 shares ACME @ 17.25".to_string())
        } else {
            (&bank, format!("statement {i}: balance update"))
        };
        ledger
            .append(TxRequest::signed(keys, doc.into_bytes(), vec!["acct-777".into()], i))
            .unwrap();
    }
    ledger.seal_block();
    println!(
        "before purge: {} journals, root {}",
        ledger.journal_count(),
        ledger.journal_root()
    );

    // Purge the first 32 journals. Prerequisite 1: DBA + every member
    // holding journals before the purge point must co-sign.
    let purge_to = 32;
    let digest = ledger.purge_approval_digest(purge_to);
    let mut approvals = MultiSignature::new();
    approvals.add(&dba, &digest);
    approvals.add(&bank, &digest);
    approvals.add(&broker, &digest);
    let ack = ledger.purge(purge_to, approvals, &[13], false).unwrap();
    println!("purge journal recorded at jsn {}", ack.jsn);

    let genesis = ledger.pseudo_genesis().unwrap();
    println!(
        "pseudo genesis: purge_to={} snapshot journal root {}",
        genesis.purge_to, genesis.snapshot.journal_root
    );

    // Purged statements are gone...
    assert!(ledger.get_tx(3).is_err());
    println!("statement 3 is no longer retrievable (purged)");

    // ...but the milestone survives and verifies.
    let milestone = ledger.survival().get(13).unwrap();
    assert!(ledger.survival().verify(13).unwrap());
    println!("milestone survived purge: {}", String::from_utf8_lossy(&milestone.payload));

    // Recent journals stay fully verifiable; the fam digests were kept.
    let anchor = ledger.anchor();
    let (tx_hash, proof) = ledger.prove_existence(38, &anchor).unwrap();
    ledger
        .verify_existence(38, &tx_hash, &proof, &anchor, VerifyLevel::Client)
        .unwrap();
    println!("post-purge journal 38 existence-verified against the live root");

    // Protocol 1: the audit validates the purge approvals and replays from
    // the retained records.
    ledger.seal_block();
    let report = audit_ledger(&ledger, &AuditConfig::default()).unwrap();
    println!(
        "audit after purge: {} journals checked, {} purge journal(s) validated",
        report.journals_checked, report.purge_journals
    );

    // Storage accounting: appended payloads for purged journals are erased.
    println!("survival stream holds {} pinned milestone(s)", ledger.survival().len());
}
