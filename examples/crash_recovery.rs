//! Crash recovery demo: run a durable ledger, kill the process mid-write,
//! and watch recovery rebuild and re-verify the ledger from its streams.
//!
//! ```text
//! cargo run --release --example crash_recovery -- run <dir> <n>   # append n journals, exit
//! cargo run --release --example crash_recovery -- crash <dir>     # append forever (kill -9 me)
//! cargo run --release --example crash_recovery -- recover <dir>   # replay + report
//! ```

use ledgerdb::core::recovery::open_durable;
use ledgerdb::core::{LedgerConfig, LedgerDb, LedgerError, MemberRegistry, TxRequest};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::storage::FsyncPolicy;
use ledgerdb::timesvc::clock::SimClock;
use std::path::Path;
use std::sync::Arc;

fn registry() -> (MemberRegistry, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"crash-demo-ca");
    let alice = KeyPair::from_seed(b"crash-demo-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, alice)
}

fn open(dir: &Path) -> Result<(LedgerDb, ledgerdb::core::RecoveryReport), LedgerError> {
    let (registry, _) = registry();
    open_durable(
        LedgerConfig { block_size: 8, fam_delta: 6, name: "crash-demo".into(), state_backend: Default::default() },
        registry,
        dir,
        FsyncPolicy::EveryN(4),
        Arc::new(SimClock::new()),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: crash_recovery (run <dir> <n> | crash <dir> | recover <dir>)";
    let mode = args.get(1).expect(usage).as_str();
    let dir = Path::new(args.get(2).expect(usage));
    let (_, alice) = registry();

    match mode {
        "run" => {
            let n: u64 = args.get(3).expect(usage).parse().expect("n must be a number");
            let (mut ledger, report) = open(dir).expect("open");
            let start = ledger.journal_count();
            for i in start..start + n {
                let req =
                    TxRequest::signed(&alice, format!("doc-{i}").into_bytes(), vec![format!("c{}", i % 4)], i);
                ledger.append(req).expect("append");
            }
            println!(
                "run: {} journals appended (total {}, {} blocks), reopen was clean={}",
                n,
                ledger.journal_count(),
                ledger.block_count(),
                report.is_clean()
            );
        }
        "crash" => {
            let (mut ledger, _) = open(dir).expect("open");
            let mut i = ledger.journal_count();
            loop {
                let req =
                    TxRequest::signed(&alice, format!("doc-{i}").into_bytes(), vec![format!("c{}", i % 4)], i);
                ledger.append(req).expect("append");
                i += 1;
            }
        }
        "recover" => match open(dir) {
            Ok((ledger, report)) => {
                println!(
                    "recover: {} journals, {} blocks verified, {} left unsealed",
                    report.journals_replayed, report.blocks_verified, report.unsealed_journals
                );
                println!(
                    "repairs: wal torn {} B, payload torn {} B, rejected {} wal records, {} orphan payloads, {} erases redone",
                    report.wal_truncated_bytes,
                    report.payload_truncated_bytes,
                    report.rejected_wal_records,
                    report.orphan_payloads_dropped,
                    report.erases_redone
                );
                if let Some(why) = &report.rejected_reason {
                    println!("rejected because: {why}");
                }
                println!(
                    "roots: journal={} clue={} state={}",
                    ledger.journal_root(),
                    ledger.clue_root(),
                    ledger.state_root()
                );
            }
            Err(e) => {
                println!("recover refused: {e}");
                std::process::exit(1);
            }
        },
        _ => panic!("{usage}"),
    }
}
