//! The paper's copyright example (§IV-A): an artwork produced in 2005,
//! with royalty transfers in 2010 and 2015. A clue (`DCI001`) is assigned
//! by the client; lineage verification must track all three records *and*
//! verify their count — a missing transfer is as much a forgery as a
//! tampered one.
//!
//! Also demonstrates the infinite-time-amplification attack on one-way
//! pegging versus the bounded window of the T-Ledger protocol (§III-B).
//!
//! Run with: `cargo run --release --example copyright_lineage`

use ledgerdb::clue::cm_tree::CmTree;
use ledgerdb::core::{LedgerConfig, LedgerDb, MemberRegistry, TxRequest, VerifyLevel};
use ledgerdb::crypto::ca::{CertificateAuthority, Role};
use ledgerdb::crypto::keys::KeyPair;
use ledgerdb::timesvc::attack::{one_way_amplification, two_way_attack};
use ledgerdb::timesvc::clock::Clock;
use ledgerdb::timesvc::tledger::{TLedger, TLedgerConfig};
use ledgerdb::timesvc::tsa::TsaPool;
use std::sync::Arc;

const CLUE: &str = "DCI001";

fn main() {
    let ca = CertificateAuthority::from_seed(b"ncac-ca");
    let artist = KeyPair::from_seed(b"artist");
    let gallery = KeyPair::from_seed(b"gallery");
    let collector = KeyPair::from_seed(b"collector");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("artist", Role::User, artist.public())).unwrap();
    registry.register(ca.issue("gallery", Role::User, gallery.public())).unwrap();
    registry.register(ca.issue("collector", Role::User, collector.public())).unwrap();

    let config = LedgerConfig { block_size: 4, fam_delta: 10, name: "copyright".into(), state_backend: Default::default() };
    let mut ledger = LedgerDb::new(config, registry);
    let clock: Arc<dyn Clock> = Arc::clone(ledger.clock());
    let tsa_pool = Arc::new(TsaPool::new(1, Arc::clone(&clock)));
    let tledger = TLedger::new(TLedgerConfig::default(), Arc::clone(&clock), tsa_pool);

    // AppendTx(lg_id, payload, 'DCI001') — three lifecycle records.
    let records = [
        (&artist, "2005: artwork 'Morning over Water' registered, DCI001"),
        (&gallery, "2010: first royalty transfer, artist -> gallery, 12%"),
        (&collector, "2015: royalty transfer, gallery -> collector, 8%"),
    ];
    for (i, (keys, doc)) in records.iter().enumerate() {
        let request =
            TxRequest::signed(keys, doc.as_bytes().to_vec(), vec![CLUE.to_string()], i as u64);
        let ack = ledger.append(request).unwrap();
        // Every record is time-anchored when appended.
        ledger.anchor_time(&tledger).unwrap();
        println!("recorded jsn {}: {}", ack.jsn, doc);
    }
    tledger.finalize_now().unwrap();
    ledger.seal_block();

    // DCI001-oriented verification: ListTx + Verify (§IV-A).
    let jsns = ledger.list_tx(CLUE);
    println!("\nListTx({CLUE}) -> {jsns:?}");
    let cm_root = ledger.clue_root();
    let proof = ledger.prove_clue(CLUE).unwrap();
    CmTree::verify_client(&cm_root, &proof).unwrap();
    assert_eq!(proof.entries.len(), 3, "the verified lineage must contain exactly 3 records");
    println!("lineage verified: 3 records, including the record *count*");

    // A forged proof that drops the 2010 transfer must fail.
    let mut forged = proof.clone();
    forged.entries.remove(1);
    assert!(
        CmTree::verify_client(&cm_root, &forged).is_err(),
        "a lineage missing a transfer must not verify"
    );
    println!("dropping the 2010 transfer makes verification fail (as it must)");

    // Server-side verification is also available when the LSP is trusted.
    ledger.verify_clue(&proof, VerifyLevel::Server).unwrap();

    // --- Why the when factor needs two-way pegging ---------------------
    println!("\ntimestamp-attack comparison (§III-B):");
    let naive = one_way_amplification(5 * 365 * 86_400 * 1_000_000);
    println!(
        "  one-way pegging: a royalty record backdated 5 years is accepted \
         (window {}s — unbounded)",
        naive.window_us.unwrap() / 1_000_000
    );
    let config = TLedgerConfig::default();
    match two_way_attack(config, 10_000_000) {
        Err(_) => println!(
            "  T-Ledger (Protocol 4): the same 10s hold-back is REJECTED; \
             accepted windows stay under {}ms",
            config.submission_tolerance_us / 1_000
        ),
        Ok(_) => unreachable!("stale submissions must be rejected"),
    }
}
