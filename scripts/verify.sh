#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and the recovery
# torture run (fault injection through the durability layer).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release (workspace: root lib + server/bench binaries) =="
# --workspace matters: the root Cargo.toml is a package + workspace, so a
# bare `cargo build` would skip the member crates' binaries (ledgerd,
# ledgerd-smoke, ledgerd-stats) that the smoke stages below execute.
cargo build --release --workspace

echo "== cargo test -q (workspace + integration + property tests) =="
cargo test -q

echo "== recovery torture (release, seeded fault sweep) =="
cargo test --release -q --test torture_recovery

echo "== snapshot torture (release, readers vs occult/purge writer) =="
cargo test --release -q --test torture_snapshot

echo "== server smoke (ledgerd + remote verify + kill -9 + recovery) =="
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/ledgerd-smoke.XXXXXX")"
SMOKE_LOG="$SMOKE_DIR/ledgerd.log"
cleanup() {
  [[ -n "${LEDGERD_PID:-}" ]] && kill -9 "$LEDGERD_PID" 2>/dev/null || true
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT
./target/release/ledgerd --dir "$SMOKE_DIR/ledger" --bind 127.0.0.1:0 \
  --seed verify-smoke > "$SMOKE_LOG" 2>&1 &
LEDGERD_PID=$!
disown "$LEDGERD_PID" 2>/dev/null || true  # keep kill -9 quiet
# The server prints "ledgerd: listening on ADDR" once bound.
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^ledgerd: listening on //p' "$SMOKE_LOG" | head -n1)"
  [[ -n "$ADDR" ]] && break
  kill -0 "$LEDGERD_PID" 2>/dev/null || { cat "$SMOKE_LOG"; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "ledgerd never reported its address"; cat "$SMOKE_LOG"; exit 1; }
# Append -> prove -> verify over the wire, as a distrusting client.
./target/release/ledgerd-smoke client --addr "$ADDR" --seed verify-smoke --n 16

echo "== telemetry (Stats over the wire, counters consistent) =="
# 16 committed appends just happened: the kernel must have counted every
# one, served them without a single error frame, and the sticky
# durability gauge must be clear.
./target/release/ledgerd-stats --addr "$ADDR" --quiet \
  --min ledger_appends_total=16 \
  --min ledger_seals_total=1 \
  --min server_req_append_committed_total=16 \
  --min batch_windows_total=1 \
  --min storage_fsync_total=1 \
  --min server_bytes_in_total=1 \
  --min server_bytes_out_total=1 \
  --zero server_error_frames_total \
  --zero ledger_durability_error \
  --zero batch_queue_depth

echo "== read mix (snapshot path serves concurrent proof reads) =="
# Pound GetProof/GetTx/Verify from 2 readers while 1 writer appends,
# then assert the lock-free snapshot path actually served: the hit
# counter must move and the hostile-input sweep's error counter must
# not.
./target/release/loadgen --read-mix --addr "$ADDR" --seed verify-smoke \
  --readers 2 --read-secs 1
./target/release/ledgerd-stats --addr "$ADDR" --quiet \
  --min ledger_snapshot_publish_total=1 \
  --min ledger_snapshot_hit_total=1 \
  --zero server_error_frames_total

# Kill the server without ceremony; every acked append must survive.
kill -9 "$LEDGERD_PID"
wait "$LEDGERD_PID" 2>/dev/null || true
LEDGERD_PID=""
./target/release/ledgerd-smoke recover --dir "$SMOKE_DIR/ledger" \
  --seed verify-smoke --expect-journals 16

echo "verify.sh: all green"
