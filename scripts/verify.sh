#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and the recovery
# torture run (fault injection through the durability layer).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (workspace + integration + property tests) =="
cargo test -q

echo "== recovery torture (release, seeded fault sweep) =="
cargo test --release -q --test torture_recovery

echo "verify.sh: all green"
