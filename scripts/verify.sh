#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and the recovery
# torture run (fault injection through the durability layer).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release (workspace: root lib + server/bench binaries) =="
# --workspace matters: the root Cargo.toml is a package + workspace, so a
# bare `cargo build` would skip the member crates' binaries (ledgerd,
# ledgerd-smoke, ledgerd-stats) that the smoke stages below execute.
cargo build --release --workspace

echo "== cargo test -q (workspace + integration + property tests) =="
cargo test -q

echo "== recovery torture (release, seeded fault sweep) =="
cargo test --release -q --test torture_recovery

echo "== recovery chaos (exhaustive checkpoint crash-point injection) =="
# Every injected write/fsync/rename/dirsync kill on the checkpoint path
# (plus torn-write variants) must recover byte-identical to the
# never-crashed control, with HEAD valid-or-absent.
cargo test --release -q --test crash_points

echo "== checkpointed restart gate (O(tail) vs O(history) A/B) =="
# Hard-asserts inside the binary: the checkpointed reopen loads HEAD and
# replays at most the post-checkpoint tail, never the whole history.
./target/release/prof_recovery --checkpoint-ab --json results/BENCH_recovery.json

echo "== snapshot torture (release, readers vs occult/purge writer) =="
cargo test --release -q --test torture_snapshot

echo "== append pipeline (differential suite + pooled vs serial A/B) =="
# Serial and pooled replays must be byte-identical across randomized
# schedules (occults/purge included), and pool-task panics must stay
# typed per-item failures.
cargo test --release -q --test differential_pipeline

# Lock-window contract: prof_append hard-asserts zero in-lock ECDSA and
# >=2 fewer sha256 finalizes per request vs the unpipelined baseline.
./target/release/prof_append --n 512 --payload 256 --workers 2 > /dev/null

# Interleaved A/B: loadgen itself asserts byte-identical roots across
# every rep and that ledger_pool_tasks_total moved on the pooled cells.
# (2>&1: the human-readable banner + speedup line go to stderr, the
# JSON rows to stdout — the asserts below need both.)
PIPE_OUT="$(./target/release/loadgen --pipeline --appends 1024 --workers 4 \
  --batch-size 64 --reps 2 2>&1)"
printf '%s\n' "$PIPE_OUT" | tail -n1
SPEEDUP="$(printf '%s\n' "$PIPE_OUT" \
  | sed -n 's/^loadgen: append-pipeline speedup: \([0-9.]*\)x.*/\1/p')"
[[ -n "$SPEEDUP" ]] || { echo "no speedup line from loadgen --pipeline"; exit 1; }
printf '%s\n' "$PIPE_OUT" | grep -Eq '"workers":4.*"pool_tasks":[1-9]' \
  || { echo "ledger_pool_tasks_total never moved on the pooled cells"; exit 1; }
CORES="$(nproc)"
if [[ "$CORES" -gt 1 ]]; then
  # Real cores available: the pooled path must not lose to serial.
  awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.0) }' \
    || { echo "pooled append slower than serial on $CORES cores (${SPEEDUP}x)"; exit 1; }
else
  # Single core: no parallelism to win with — gate on near-parity so a
  # coordination-overhead regression still fails the build.
  echo "note: single core — gating pooled/serial on parity (>=0.85x), not speedup"
  awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 0.85) }' \
    || { echo "pooled append overhead too high (${SPEEDUP}x < 0.85x)"; exit 1; }
fi

echo "== sharded scale-out (differential suite + composed-proof sweep) =="
# K=1 must be byte-identical to the plain-ledger service, and K=4 runs
# must be deterministic and inter-shard-interleaving-independent
# (occults and a purge ride in the schedule).
cargo test --release -q --test differential_shard
# The sweep audits itself: a distrusting client syncs every shard
# replica, mirrors the epoch anchors against its own verified roots,
# and hard-asserts that every sampled cross-shard proof composes and
# verifies against its OWN top anchor root — at every K.
mkdir -p results
SHARD_OUT="$(./target/release/loadgen --shards 1,2,4 --appends 1024 \
  --batch-size 64 2>&1)"
printf '%s\n' "$SHARD_OUT" | grep '"bench"' > results/BENCH_shard.json
printf '%s\n' "$SHARD_OUT" | tail -n1
for K in 1 2 4; do
  grep -q "\"shards\":$K,.*\"composed_verified\":true" results/BENCH_shard.json \
    || { echo "no verified composed-proof row for K=$K"; exit 1; }
done
SCALE="$(printf '%s\n' "$SHARD_OUT" \
  | sed -n 's/^loadgen: shard scale-out at K=4: \([0-9.]*\)x.*/\1/p')"
[[ -n "$SCALE" ]] || { echo "no scale-out line from loadgen --shards"; exit 1; }
if [[ "$CORES" -gt 1 ]]; then
  # Real cores: K=4 must at least hold parity with K=1 (near-linear on
  # quiet many-core boxes; >=0.9 absorbs CI noise without letting a
  # real serialization regression through).
  awk -v s="$SCALE" 'BEGIN { exit !(s >= 0.9) }' \
    || { echo "K=4 sharded appends regressed vs K=1 on $CORES cores (${SCALE}x)"; exit 1; }
else
  echo "note: single core — composed-proof audit is the gate (no wall-clock claim)"
fi

echo "== state-ab (pluggable commitment: differential suites + witness A/B) =="
# The default backend must stay byte-identical to the pre-refactor
# ledger (pinned fingerprints), both backends must agree on every
# observable behavior, and the binary trie's proofs must survive the
# tamper sweep.
cargo test --release -q --test differential_state
cargo test --release -q --test prop_bintrie
# Witness-size A/B at 10^5 keys. loadgen itself hard-asserts the >=4x
# structural gate (trie shape, valid on any core count) and that the
# per-backend ledger_proof_bytes/ledger_verify_seconds histograms were
# scraped off the exposition.
mkdir -p results
STATE_OUT="$(./target/release/loadgen --state-ab --keys 100000 --appends 2048 2>&1)"
printf '%s\n' "$STATE_OUT" | grep '"bench"' > results/BENCH_state.json
printf '%s\n' "$STATE_OUT" | tail -n1
RATIO="$(sed -n 's/.*"witness_ratio":\([0-9.]*\).*/\1/p' results/BENCH_state.json | head -n1)"
[[ -n "$RATIO" ]] || { echo "no witness_ratio in BENCH_state.json"; exit 1; }
awk -v r="$RATIO" 'BEGIN { exit !(r >= 4.0) }' \
  || { echo "binary witnesses not >=4x smaller (${RATIO}x)"; exit 1; }
if [[ "$CORES" -gt 1 ]]; then
  # Real cores: the binary backend may not cost more than 5% append
  # throughput vs the MPT default (positive delta = bin slower).
  DELTA="$(sed -n 's/.*"append_delta_pct":\(-\{0,1\}[0-9.]*\).*/\1/p' \
    results/BENCH_state.json | head -n1)"
  [[ -n "$DELTA" ]] || { echo "no append_delta_pct in BENCH_state.json"; exit 1; }
  awk -v d="$DELTA" 'BEGIN { exit !(d <= 5.0) }' \
    || { echo "binary backend regresses appends by ${DELTA}% (> 5%) on $CORES cores"; exit 1; }
else
  echo "note: single core — witness-ratio gate only (append delta not gated)"
fi

echo "== server smoke (ledgerd + remote verify + kill -9 + recovery) =="
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/ledgerd-smoke.XXXXXX")"
SMOKE_LOG="$SMOKE_DIR/ledgerd.log"
cleanup() {
  [[ -n "${LEDGERD_PID:-}" ]] && kill -9 "$LEDGERD_PID" 2>/dev/null || true
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT
# --checkpoint-every-n-seals 1: every seal commits a checkpoint, so the
# kill -9 recovery below exercises checkpoint-load + tail-replay, not
# just raw WAL replay (the torture suites cover that path).
./target/release/ledgerd --dir "$SMOKE_DIR/ledger" --bind 127.0.0.1:0 \
  --seed verify-smoke --checkpoint-every-n-seals 1 > "$SMOKE_LOG" 2>&1 &
LEDGERD_PID=$!
disown "$LEDGERD_PID" 2>/dev/null || true  # keep kill -9 quiet
# The server prints "ledgerd: listening on ADDR" once bound.
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^ledgerd: listening on //p' "$SMOKE_LOG" | head -n1)"
  [[ -n "$ADDR" ]] && break
  kill -0 "$LEDGERD_PID" 2>/dev/null || { cat "$SMOKE_LOG"; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "ledgerd never reported its address"; cat "$SMOKE_LOG"; exit 1; }
# Append -> prove -> verify over the wire, as a distrusting client.
./target/release/ledgerd-smoke client --addr "$ADDR" --seed verify-smoke --n 16

echo "== telemetry (Stats over the wire, counters consistent) =="
# 16 committed appends just happened: the kernel must have counted every
# one, served them without a single error frame, and the sticky
# durability gauge must be clear.
./target/release/ledgerd-stats --addr "$ADDR" --quiet \
  --min ledger_appends_total=16 \
  --min ledger_seals_total=1 \
  --min ledger_checkpoints_total=1 \
  --min server_req_append_committed_total=16 \
  --min batch_windows_total=1 \
  --min storage_fsync_total=1 \
  --min server_bytes_in_total=1 \
  --min server_bytes_out_total=1 \
  --zero server_error_frames_total \
  --zero ledger_durability_error \
  --zero batch_queue_depth

echo "== read mix (snapshot path serves concurrent proof reads) =="
# Pound GetProof/GetTx/Verify from 2 readers while 1 writer appends,
# then assert the lock-free snapshot path actually served: the hit
# counter must move and the hostile-input sweep's error counter must
# not.
./target/release/loadgen --read-mix --addr "$ADDR" --seed verify-smoke \
  --readers 2 --read-secs 1
./target/release/ledgerd-stats --addr "$ADDR" --quiet \
  --min ledger_snapshot_publish_total=1 \
  --min ledger_snapshot_hit_total=1 \
  --zero server_error_frames_total

# Kill the server without ceremony; every acked append must survive.
kill -9 "$LEDGERD_PID"
wait "$LEDGERD_PID" 2>/dev/null || true
LEDGERD_PID=""
./target/release/ledgerd-smoke recover --dir "$SMOKE_DIR/ledger" \
  --seed verify-smoke --expect-journals 16

echo "== event loop (differential transport + slow-client suites) =="
# Byte-identical responses across the threaded and epoll transports for
# the full request mix, and the hostile-slow-client suite (trickle,
# slowloris, half-close) against a 4-slot loop.
cargo test --release -q --test differential_servers
cargo test --release -q --test event_loop

echo "== event loop (ledgerd --event-loop smoke + HTTP operator plane) =="
# Same smoke client as the threaded stage, but through the epoll server,
# with the HTTP endpoints curled while appends are in flight.
./target/release/ledgerd --dir "$SMOKE_DIR/ledger-ev" --bind 127.0.0.1:0 \
  --seed verify-smoke --event-loop --http-addr 127.0.0.1:0 \
  > "$SMOKE_DIR/ledgerd-ev.log" 2>&1 &
LEDGERD_PID=$!
disown "$LEDGERD_PID" 2>/dev/null || true
EV_ADDR="" ; EV_HTTP=""
for _ in $(seq 1 50); do
  EV_ADDR="$(sed -n 's/^ledgerd: listening on //p' "$SMOKE_DIR/ledgerd-ev.log" | head -n1)"
  EV_HTTP="$(sed -n 's/^ledgerd: http on //p' "$SMOKE_DIR/ledgerd-ev.log" | head -n1)"
  [[ -n "$EV_ADDR" && -n "$EV_HTTP" ]] && break
  kill -0 "$LEDGERD_PID" 2>/dev/null || { cat "$SMOKE_DIR/ledgerd-ev.log"; exit 1; }
  sleep 0.1
done
[[ -n "$EV_ADDR" && -n "$EV_HTTP" ]] \
  || { echo "event-loop ledgerd never reported its addresses"; cat "$SMOKE_DIR/ledgerd-ev.log"; exit 1; }
# Append storm in the background while the operator plane is probed: the
# HTTP listener shares the loop with the binary listener, so a valid
# /metrics mid-storm proves neither starves the other.
./target/release/ledgerd-smoke client --addr "$EV_ADDR" --seed verify-smoke --n 64 &
SMOKE_CLIENT_PID=$!
curl -fsS "http://$EV_HTTP/healthz" | grep -q '^ok$' \
  || { echo "/healthz did not answer ok"; exit 1; }
curl -fsS "http://$EV_HTTP/status" | grep -q '"journal_root"' \
  || { echo "/status is not the expected JSON"; exit 1; }
curl -fsS "http://$EV_HTTP/metrics" | grep -q '^# TYPE server_loop_iterations_total counter' \
  || { echo "/metrics is not a valid exposition during the append storm"; exit 1; }
curl -fsS "http://$EV_HTTP/trace/slow" | grep -q '"slow"' \
  || { echo "/trace/slow is not the expected JSON"; exit 1; }
curl -fsS "http://$EV_HTTP/status" | grep -q '"snapshot_hits"' \
  || { echo "/status lacks the snapshot read counters"; exit 1; }
wait "$SMOKE_CLIENT_PID" || { echo "smoke client failed against the event loop"; exit 1; }
# With the storm committed, a proof is servable over plain HTTP.
curl -fsS "http://$EV_HTTP/proof/0" | grep -q '"tx_hash"' \
  || { echo "/proof/0 did not return a proof"; exit 1; }
./target/release/ledgerd-stats --addr "$EV_ADDR" --quiet \
  --min ledger_appends_total=64 \
  --min server_loop_iterations_total=1 \
  --min server_http_requests_total=4 \
  --zero ledger_durability_error
kill -9 "$LEDGERD_PID" 2>/dev/null || true
wait "$LEDGERD_PID" 2>/dev/null || true
LEDGERD_PID=""

echo "== event loop (concurrency sweep: 64 / 512 / 4096 connections) =="
# Each cell holds N sockets open SIMULTANEOUSLY and drives every one of
# them through its rounds; loadgen hard-asserts (structural gate, valid
# on any core count) that every connection was served, that the loop's
# own gauge saw all N at peak, and that /metrics answered mid-storm.
ulimit -n 20000 2>/dev/null \
  || echo "note: could not raise fd limit; current: $(ulimit -n)"
mkdir -p results
./target/release/loadgen --connections 64,512,4096 --rounds 3 \
  | tee results/BENCH_net.json
if [[ "$CORES" -gt 1 ]]; then
  # Real cores: gate client-observed tail latency at the 4096 cell.
  P99="$(sed -n 's/.*"connections":4096,.*"p99_ms":\([0-9.]*\).*/\1/p' \
    results/BENCH_net.json | head -n1)"
  [[ -n "$P99" ]] || { echo "no 4096-connection row in BENCH_net.json"; exit 1; }
  awk -v p="$P99" 'BEGIN { exit !(p <= 250.0) }' \
    || { echo "p99 at 4096 connections too high on $CORES cores (${P99}ms > 250ms)"; exit 1; }
else
  echo "note: single core — structural gates only (loadgen's internal asserts)"
fi

echo "== tracing (span-tree suites + stage breakdown + overhead A/B) =="
# Transport-differential span trees + hostile envelope rejection ran in
# differential_servers above; trace_pipeline pins stage presence, the
# queue→lock→seal→fsync ordering, the seal-leg spans vs ledger_seal_*
# histogram agreement, and the forced-slow pin-and-resolve round trip.
cargo test --release -q --test trace_pipeline
# loadgen --trace hard-asserts (any core count): every sampled traced
# commit yields the full stage skeleton in commit order, joined from a
# remote client by the id the call carried. Its JSON rows carry the
# per-stage p50/p99 table and the interleaved A/B overhead.
mkdir -p results
TRACE_OUT="$(./target/release/loadgen --trace --appends 512 --reps 3 2>&1)"
printf '%s\n' "$TRACE_OUT" | grep '"bench"' > results/BENCH_trace.json
printf '%s\n' "$TRACE_OUT" | tail -n1
grep -q '"seal_fam"' results/BENCH_trace.json \
  || { echo "stage table lacks the seal legs"; exit 1; }
OVERHEAD="$(sed -n 's/.*"overhead":\(-\{0,1\}[0-9.]*\).*/\1/p' \
  results/BENCH_trace.json | head -n1)"
[[ -n "$OVERHEAD" ]] || { echo "no overhead figure from loadgen --trace"; exit 1; }
if [[ "$CORES" -gt 1 ]]; then
  # Median traced throughput within 2% of median untraced.
  awk -v o="$OVERHEAD" 'BEGIN { exit !(o <= 0.02) }' \
    || { echo "tracing overhead above 2% of median throughput (${OVERHEAD})"; exit 1; }
else
  echo "note: single core — structural trace gates only (overhead not gated)"
fi

echo "verify.sh: all green"
